#include "joshua/protocol.h"

#include <gtest/gtest.h>

namespace {

using namespace joshua;

TEST(JoshuaProtocol, GroupCommandRoundTrip) {
  GroupCommand cmd;
  cmd.origin = 3;
  cmd.cmd_seq = 99;
  cmd.pbs_request = {1, 2, 3};
  sim::Payload buf = encode_group(cmd);
  EXPECT_EQ(peek_group_op(buf), GroupOp::kCommand);
  GroupCommand back = decode_group_command(buf);
  EXPECT_EQ(back.origin, 3u);
  EXPECT_EQ(back.cmd_seq, 99u);
  EXPECT_EQ(back.pbs_request, (sim::Payload{1, 2, 3}));
}

TEST(JoshuaProtocol, MutexMessagesRoundTrip) {
  GroupMutexReq req{42, 7};
  sim::Payload buf = encode_group(req);
  EXPECT_EQ(peek_group_op(buf), GroupOp::kMutexReq);
  GroupMutexReq back = decode_group_mutex_req(buf);
  EXPECT_EQ(back.job, 42u);
  EXPECT_EQ(back.head, 7u);

  GroupMutexDone done{42, 271, 7};
  GroupMutexDone db = decode_group_mutex_done(encode_group(done));
  EXPECT_EQ(db.job, 42u);
  EXPECT_EQ(db.exit_code, 271);
  EXPECT_EQ(db.head, 7u);
}

TEST(JoshuaProtocol, PluginMessagesRoundTrip) {
  JMutexRequest req{11, 2};
  JMutexRequest rb = decode_jmutex(encode_plugin(req));
  EXPECT_EQ(rb.job, 11u);
  EXPECT_EQ(rb.head, 2u);

  JDoneRequest done{11, 5};
  JDoneRequest db = decode_jdone(encode_plugin(done));
  EXPECT_EQ(db.job, 11u);
  EXPECT_EQ(db.exit_code, 5);

  for (bool won : {true, false}) {
    JMutexResponse resp{won};
    EXPECT_EQ(decode_jmutex_response(encode_jmutex_response(resp)).won, won);
  }
}

TEST(JoshuaProtocol, PluginOpsDistinctFromPbsOps) {
  // The joshua server demuxes by first byte; plugin ops must never collide
  // with PBS ops.
  EXPECT_GT(static_cast<uint8_t>(PluginOp::kJMutex), 100);
  EXPECT_GT(static_cast<uint8_t>(PluginOp::kJDone), 100);
}

TEST(JoshuaProtocol, CommandLogRoundTrip) {
  CommandLog log;
  log.requests = {{1}, {2, 2}, {3, 3, 3}};
  CommandLog back = decode_command_log(encode_command_log(log));
  ASSERT_EQ(back.requests.size(), 3u);
  EXPECT_EQ(back.requests[2], (sim::Payload{3, 3, 3}));
}

TEST(JoshuaProtocol, TransferWrapperDistinguishesKinds) {
  sim::Payload body{9, 8, 7};
  TransferEnvelope env = unwrap_transfer(wrap_transfer(TransferKind::kSnapshot, body));
  EXPECT_EQ(env.kind, TransferKind::kSnapshot);
  EXPECT_EQ(env.body, body);
  EXPECT_TRUE(env.mutexes.empty());
  sim::Payload mutexes{4, 2};
  TransferEnvelope env2 =
      unwrap_transfer(wrap_transfer(TransferKind::kReplayLog, body, mutexes));
  EXPECT_EQ(env2.kind, TransferKind::kReplayLog);
  EXPECT_EQ(env2.body, body);
  EXPECT_EQ(env2.mutexes, mutexes);
}

TEST(JoshuaProtocol, MutexTableRoundTrip) {
  MutexTable table;
  MutexEntry running;
  running.job = 7;
  running.max_real = 2;
  running.claims = {MutexClaim{31, 3}, MutexClaim{32, 4}};
  MutexEntry finished;
  finished.job = 9;
  finished.done = true;
  finished.winner_mom = 33;
  finished.exit_code = -11;
  table.entries = {running, finished};
  table.terminal = {2, 9};
  table.revoked = {34};

  MutexTable back = decode_mutex_table(encode_mutex_table(table));
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].job, 7u);
  EXPECT_EQ(back.entries[0].max_real, 2u);
  EXPECT_FALSE(back.entries[0].done);
  ASSERT_EQ(back.entries[0].claims.size(), 2u);
  EXPECT_EQ(back.entries[0].claims[0].mom, 31u);
  EXPECT_EQ(back.entries[0].claims[0].head, 3u);
  EXPECT_EQ(back.entries[1].job, 9u);
  EXPECT_TRUE(back.entries[1].done);
  EXPECT_EQ(back.entries[1].winner_mom, 33u);
  EXPECT_EQ(back.entries[1].exit_code, -11);
  EXPECT_TRUE(back.entries[1].claims.empty());
  EXPECT_EQ(back.terminal, (std::vector<pbs::JobId>{2, 9}));
  EXPECT_EQ(back.revoked, (std::vector<sim::HostId>{34}));

  MutexTable empty = decode_mutex_table(encode_mutex_table(MutexTable{}));
  EXPECT_TRUE(empty.entries.empty());
  EXPECT_TRUE(empty.terminal.empty());
}

TEST(JoshuaProtocol, MalformedInputsThrow) {
  EXPECT_THROW(peek_group_op(sim::Payload{}), net::WireError);
  EXPECT_THROW(decode_group_command(encode_group(GroupMutexReq{1, 2})),
               net::WireError);
  sim::Payload truncated = encode_group(GroupCommand{1, 2, {3, 4, 5}});
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW(decode_group_command(truncated), net::WireError);
  EXPECT_THROW(unwrap_transfer(sim::Payload{1}), net::WireError);
}

}  // namespace
