// Head-node join with state transfer: replay mode (JOSHUA v0.1, Section 4)
// and snapshot mode (the paper's future-work extension).
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"

namespace {

using namespace joshuatest;

class JoinTest : public ::testing::TestWithParam<joshua::TransferMode> {};

TEST_P(JoinTest, JoinerInheritsQueueState) {
  joshua::ClusterOptions options = fast_options(3, 1);
  options.transfer = GetParam();
  joshua::Cluster cluster(options);
  // Start only heads 0 and 1.
  cluster.joshua_server(0).start();
  cluster.joshua_server(1).start();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(0).group().view().size() == 2;
  }));

  joshua::Client& client = cluster.make_jclient();
  pbs::JobId a = jsub_sync(cluster, client, quick_job(sim::seconds(300)));
  pbs::JobId b = jsub_sync(cluster, client, quick_job(sim::seconds(300)));
  ASSERT_NE(a, pbs::kInvalidJob);
  ASSERT_NE(b, pbs::kInvalidJob);

  // Head 2 joins late.
  cluster.joshua_server(2).start();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(2).group().view().size() == 3;
  }, sim::seconds(60)));

  // The joiner's PBS server must know both jobs.
  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.pbs_server(2).find_job(a).has_value() &&
           cluster.pbs_server(2).find_job(b).has_value();
  }, sim::seconds(60)))
      << "state transfer must rebuild the queue at the joiner";
}

TEST_P(JoinTest, CommandsAfterJoinApplyAtJoiner) {
  joshua::ClusterOptions options = fast_options(2, 1);
  options.transfer = GetParam();
  joshua::Cluster cluster(options);
  cluster.joshua_server(0).start();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(0).in_service();
  }));
  joshua::Client& client = cluster.make_jclient();
  jsub_sync(cluster, client, quick_job(sim::seconds(300)));

  cluster.joshua_server(1).start();
  ASSERT_TRUE(cluster.run_until_converged());
  pbs::JobId later = jsub_sync(cluster, client, quick_job(sim::seconds(300)));
  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.pbs_server(1).find_job(later).has_value();
  }));
  cluster.sim().run_for(sim::seconds(2));
  EXPECT_TRUE(heads_consistent(cluster));
}

TEST_P(JoinTest, CrashedHeadRejoinsAndRecoversState) {
  joshua::ClusterOptions options = fast_options(2, 1);
  options.transfer = GetParam();
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(600)));
  ASSERT_NE(id, pbs::kInvalidJob);

  cluster.net().crash_host(cluster.head_hosts()[1]);
  ASSERT_TRUE(cluster.run_until_converged());
  // Note: the crashed head's PBS server keeps durable state on disk, but
  // the paper treats a rejoining head as fresh -- state comes via transfer.
  cluster.net().restart_host(cluster.head_hosts()[1]);
  cluster.joshua_server(1).start();
  ASSERT_TRUE(cluster.run_until_converged(sim::seconds(60)));

  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.pbs_server(1).find_job(id).has_value();
  }, sim::seconds(60)));
  // And the rejoined head serves commands again.
  pbs::JobId next = jsub_sync(cluster, client, quick_job(sim::seconds(600)));
  EXPECT_NE(next, pbs::kInvalidJob);
  cluster.sim().run_for(sim::seconds(2));
  EXPECT_TRUE(heads_consistent(cluster));
}

INSTANTIATE_TEST_SUITE_P(
    TransferModes, JoinTest,
    ::testing::Values(joshua::TransferMode::kReplay,
                      joshua::TransferMode::kSnapshot),
    [](const ::testing::TestParamInfo<joshua::TransferMode>& info) {
      return info.param == joshua::TransferMode::kReplay ? "Replay"
                                                         : "Snapshot";
    });

TEST(JoinReplayCompaction, CompletedJobsNotReplayed) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.joshua_server(0).start();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(0).in_service();
  }));
  joshua::Client& client = cluster.make_jclient();
  // Run two jobs to completion, keep one queued.
  pbs::JobId done1 = jsub_sync(cluster, client, quick_job(sim::msec(200)));
  pbs::JobId done2 = jsub_sync(cluster, client, quick_job(sim::msec(200)));
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(0).find_job(done2);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(60)));
  pbs::JobId live = jsub_sync(cluster, client, quick_job(sim::seconds(600)));
  (void)done1;

  cluster.joshua_server(1).start();
  ASSERT_TRUE(cluster.run_until_converged());
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.pbs_server(1).find_job(live).has_value() ||
           !cluster.pbs_server(1).jobs().empty();
  }, sim::seconds(60)));
  cluster.sim().run_for(sim::seconds(5));

  // Compaction: the completed jobs are not replayed at the joiner (they
  // would re-run!), only the live one is -- and under its ORIGINAL id.
  EXPECT_EQ(cluster.pbs_server(1).jobs().size(), 1u);
  EXPECT_TRUE(cluster.pbs_server(1).find_job(live).has_value());
  EXPECT_EQ(cluster.mom(0).jobs_executed(), 3u)
      << "done1 + done2 + live ran once each; the replay re-ran nothing";
  EXPECT_GE(cluster.joshua_server(1).stats().replays_applied, 1u);
}

TEST(JoinSnapshot, SnapshotPreservesJobIdsAndStates) {
  joshua::ClusterOptions options = fast_options(2, 1);
  options.transfer = joshua::TransferMode::kSnapshot;
  joshua::Cluster cluster(options);
  cluster.joshua_server(0).start();
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    return cluster.joshua_server(0).in_service();
  }));
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId done = jsub_sync(cluster, client, quick_job(sim::msec(200)));
  ASSERT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(0).find_job(done);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(60)));

  cluster.joshua_server(1).start();
  ASSERT_TRUE(cluster.run_until_converged());
  EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
    auto j = cluster.pbs_server(1).find_job(done);
    return j && j->state == pbs::JobState::kComplete;
  }, sim::seconds(60)))
      << "snapshot carries even completed-job history, unlike replay";
}

}  // namespace
