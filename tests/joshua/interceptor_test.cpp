// The command-interception path: jsub/jstat/jdel replicate through the
// group and execute identically at every head; output returns exactly once.
#include <gtest/gtest.h>

#include "joshua/joshua_harness.h"

namespace {

using namespace joshuatest;

TEST(Interceptor, SubmitReplicatesToAllHeads) {
  joshua::Cluster cluster(fast_options(3, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  ASSERT_NE(id, pbs::kInvalidJob);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(testutil::run_until(cluster.sim(), [&] {
      return cluster.pbs_server(i).find_job(id).has_value();
    })) << "head " << i;
  }
  EXPECT_TRUE(heads_consistent(cluster));
}

TEST(Interceptor, SameJobIdsAtEveryHead) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  std::vector<pbs::JobId> ids;
  for (int i = 0; i < 3; ++i)
    ids.push_back(jsub_sync(cluster, client, quick_job(sim::seconds(60))));
  EXPECT_EQ(ids, (std::vector<pbs::JobId>{1, 2, 3}))
      << "deterministic id assignment from the ordered command stream";
}

TEST(Interceptor, JobRunsExactlyOnceAcrossHeads) {
  joshua::Cluster cluster(fast_options(4, 2));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::msec(400)));
  ASSERT_NE(id, pbs::kInvalidJob);
  ASSERT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
  uint64_t executed = 0, emulated = 0;
  for (size_t c = 0; c < cluster.compute_count(); ++c) {
    executed += cluster.mom(c).jobs_executed();
    emulated += cluster.mom(c).launches_emulated();
  }
  EXPECT_EQ(executed, 1u) << "jmutex: the job ran exactly once";
  EXPECT_EQ(emulated, 3u) << "the other three heads' launches were emulated";
}

TEST(Interceptor, JdelCancelsEverywhere) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId blocker = jsub_sync(cluster, client, quick_job(sim::seconds(120)));
  pbs::JobId victim = jsub_sync(cluster, client, quick_job(sim::seconds(120)));
  ASSERT_NE(victim, pbs::kInvalidJob);
  (void)blocker;
  bool done = false;
  std::optional<pbs::SimpleResponse> resp;
  client.jdel(victim, [&](auto r) {
    done = true;
    resp = r;
  });
  testutil::run_until(cluster.sim(), [&] { return done; });
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, pbs::Status::kOk);
  ASSERT_TRUE(wait_state_everywhere(cluster, victim, pbs::JobState::kComplete));
  for (size_t i = 0; i < 2; ++i)
    EXPECT_TRUE(cluster.pbs_server(i).find_job(victim)->cancelled);
}

TEST(Interceptor, JstatSeesConsistentState) {
  joshua::Cluster cluster(fast_options(3, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  std::optional<pbs::StatResponse> stat;
  client.jstat(pbs::StatRequest{}, [&](auto r) { stat = r; });
  testutil::run_until(cluster.sim(), [&] { return stat.has_value(); });
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->jobs.size(), 2u);
}

TEST(Interceptor, ExactlyOnceOutput) {
  // Only the contacted head answers; the reply count equals the command
  // count even though every head executes every command.
  joshua::Cluster cluster(fast_options(3, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  int replies = 0;
  for (int i = 0; i < 4; ++i) {
    client.jsub(quick_job(sim::seconds(60)), [&](auto r) {
      if (r) ++replies;
    });
  }
  cluster.sim().run_for(sim::seconds(10));
  EXPECT_EQ(replies, 4);
  uint64_t relayed = 0, executed = 0;
  for (size_t i = 0; i < 3; ++i) {
    relayed += cluster.joshua_server(i).stats().replies_relayed;
    executed += cluster.joshua_server(i).stats().commands_executed;
  }
  EXPECT_EQ(relayed, 4u) << "one reply per command";
  EXPECT_EQ(executed, 12u) << "every head executed every command";
}

TEST(Interceptor, HoldRejectedInReplayMode) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::seconds(60)));
  std::optional<pbs::SimpleResponse> resp;
  client.jhold(id, [&](auto r) { resp = r; });
  testutil::run_until(cluster.sim(), [&] { return resp.has_value(); });
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, pbs::Status::kUnsupported)
      << "JOSHUA v0.1 cannot hold/release (replay transfer limitation)";
}

TEST(Interceptor, HoldWorksInSnapshotMode) {
  joshua::ClusterOptions options = fast_options(2, 1);
  options.transfer = joshua::TransferMode::kSnapshot;
  joshua::Cluster cluster(options);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  joshua::Client& client = cluster.make_jclient();
  pbs::JobId blocker = jsub_sync(cluster, client, quick_job(sim::seconds(5)));
  (void)blocker;
  pbs::JobId id = jsub_sync(cluster, client, quick_job(sim::msec(100)));
  std::optional<pbs::SimpleResponse> resp;
  client.jhold(id, [&](auto r) { resp = r; });
  testutil::run_until(cluster.sim(), [&] { return resp.has_value(); });
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, pbs::Status::kOk);
  EXPECT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kHeld));
  resp.reset();
  client.jrls(id, [&](auto r) { resp = r; });
  EXPECT_TRUE(wait_state_everywhere(cluster, id, pbs::JobState::kComplete));
}

TEST(Interceptor, UnsupportedOpsRejected) {
  joshua::Cluster cluster(fast_options(2, 1));
  cluster.start();
  ASSERT_TRUE(cluster.run_until_converged());
  // qsig has no JOSHUA wrapper ("The original PBS command may be executed
  // independently of JOSHUA").
  pbs::ClientConfig cfg = pbs::client_config_from(
      sim::fast_calibration(), cluster.joshua_endpoint(0));
  pbs::Client raw(cluster.net(), cluster.login_host(), 24000, cfg);
  std::optional<pbs::SimpleResponse> resp;
  raw.qsig(1, 15, [&](auto r) { resp = r; });
  testutil::run_until(cluster.sim(), [&] { return resp.has_value(); });
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, pbs::Status::kUnsupported);
}

TEST(Interceptor, BusyBeforeGroupForms) {
  joshua::Cluster cluster(fast_options(2, 1));
  // No start(): the heads never join.
  joshua::Client& client = cluster.make_jclient();
  bool done = false;
  std::optional<pbs::SubmitResponse> got{pbs::SubmitResponse{}};
  client.jsub(quick_job(), [&](auto r) {
    done = true;
    got = r;
  });
  testutil::run_until(cluster.sim(), [&] { return done; }, sim::seconds(60));
  ASSERT_TRUE(done);
  // Either a busy error relayed from a head, or a full failover timeout.
  if (got.has_value()) {
    EXPECT_EQ(got->status, pbs::Status::kServerBusy);
  }
}

}  // namespace
