#include "sim/network.h"

#include <gtest/gtest.h>

#include "sim/process.h"
#include "sim/simulation.h"

namespace {

/// Records every packet it receives.
class Sink : public sim::Process {
 public:
  Sink(sim::Network& net, sim::HostId host, sim::Port port)
      : sim::Process(net, host, port, "sink") {}
  void on_packet(sim::Packet packet) override {
    received.push_back(std::move(packet));
    receive_times.push_back(sim().now());
  }
  std::vector<sim::Packet> received;
  std::vector<sim::Time> receive_times;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(sim_, sim::NetworkConfig{}) {
    a_ = net_.add_host("a").id();
    b_ = net_.add_host("b").id();
    c_ = net_.add_host("c").id();
  }
  sim::Simulation sim_;
  sim::Network net_;
  sim::HostId a_, b_, c_;
};

TEST_F(NetworkTest, UnicastDelivers) {
  Sink sink(net_, b_, 10);
  net_.send({{a_, 1}, {b_, 10}, {0x42}});
  sim_.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].data, sim::Payload{0x42});
  EXPECT_EQ(sink.received[0].src.host, a_);
  EXPECT_GT(sim_.now().us, 0) << "network latency must be nonzero";
}

TEST_F(NetworkTest, LoopbackFasterThanRemote) {
  Sink local(net_, a_, 10);
  Sink remote(net_, b_, 10);
  net_.send({{a_, 1}, {a_, 10}, {1}});
  net_.send({{a_, 1}, {b_, 10}, {2}});
  sim_.run();
  ASSERT_EQ(local.receive_times.size(), 1u);
  ASSERT_EQ(remote.receive_times.size(), 1u);
  EXPECT_LT(local.receive_times[0], remote.receive_times[0]);
}

TEST_F(NetworkTest, UnboundPortDropsSilently) {
  net_.send({{a_, 1}, {b_, 99}, {1}});
  sim_.run();  // must not crash
}

TEST_F(NetworkTest, CrashedHostReceivesNothing) {
  Sink sink(net_, b_, 10);
  net_.crash_host(b_);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(net_.frames_dropped(), 1u);
}

TEST_F(NetworkTest, CrashedSenderSendsNothing) {
  Sink sink(net_, b_, 10);
  net_.crash_host(a_);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
}

TEST_F(NetworkTest, InFlightPacketDroppedOnCrash) {
  Sink sink(net_, b_, 10);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  net_.crash_host(b_);  // crash before delivery event fires
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
}

TEST_F(NetworkTest, RestartRestoresDelivery) {
  Sink sink(net_, b_, 10);
  net_.crash_host(b_);
  net_.restart_host(b_);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(net_.host(b_).incarnation(), 2u);
}

TEST_F(NetworkTest, PartitionBlocksTraffic) {
  Sink sink(net_, b_, 10);
  net_.set_partition(b_, 1);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
  net_.clear_partitions();
  net_.send({{a_, 1}, {b_, 10}, {2}});
  sim_.run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(NetworkTest, SamePartitionNonZeroStillTalks) {
  Sink sink(net_, b_, 10);
  net_.set_partition(a_, 1);
  net_.set_partition(b_, 1);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_EQ(sink.received.size(), 1u);
}

TEST_F(NetworkTest, MulticastOneMediumSlotManyReceivers) {
  Sink sb(net_, b_, 10);
  Sink sc(net_, c_, 10);
  net_.multicast({a_, 1}, 10, {7}, {b_, c_});
  sim_.run();
  EXPECT_EQ(sb.received.size(), 1u);
  EXPECT_EQ(sc.received.size(), 1u);
  EXPECT_EQ(net_.frames_sent(), 1u) << "physical multicast = one frame";
}

TEST_F(NetworkTest, MulticastSkipsDownAndPartitioned) {
  Sink sb(net_, b_, 10);
  Sink sc(net_, c_, 10);
  net_.crash_host(b_);
  net_.multicast({a_, 1}, 10, {7}, {b_, c_});
  sim_.run();
  EXPECT_TRUE(sb.received.empty());
  EXPECT_EQ(sc.received.size(), 1u);
}

TEST_F(NetworkTest, MulticastIncludesLocalDelivery) {
  Sink sa(net_, a_, 10);
  Sink sb(net_, b_, 10);
  net_.multicast({a_, 1}, 10, {7}, {a_, b_});
  sim_.run();
  EXPECT_EQ(sa.received.size(), 1u);
  EXPECT_EQ(sb.received.size(), 1u);
}

TEST_F(NetworkTest, LossRateDropsFrames) {
  net_.mutable_config().loss_rate = 1.0;
  Sink sink(net_, b_, 10);
  net_.send({{a_, 1}, {b_, 10}, {1}});
  sim_.run();
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(net_.frames_dropped(), 1u);
}

TEST_F(NetworkTest, SharedMediumSerializesLargeFrames) {
  // Two large back-to-back frames must arrive separated by at least the
  // transmission time of one frame (the hub is half duplex).
  Sink sink(net_, b_, 10);
  sim::Payload big(125000, 0xab);  // 1 Mbit -> 10 ms at 100 Mbit/s
  net_.send({{a_, 1}, {b_, 10}, big});
  net_.send({{c_, 1}, {b_, 10}, big});
  sim_.run();
  ASSERT_EQ(sink.received.size(), 2u);
  sim::Duration gap = sink.receive_times[1] - sink.receive_times[0];
  EXPECT_GE(gap.us, 9000) << "second frame waited for the medium";
}

TEST_F(NetworkTest, HostCpuSerializesWork) {
  sim::Host& host = net_.host(a_);
  std::vector<int64_t> done;
  host.execute(sim::msec(10), [&] { done.push_back(sim_.now().us); });
  host.execute(sim::msec(10), [&] { done.push_back(sim_.now().us); });
  sim_.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10000);
  EXPECT_EQ(done[1], 20000) << "second task queued behind the first";
}

TEST_F(NetworkTest, CpuScaleSpeedsUpWork) {
  sim::HostId fast = net_.add_host("fast", 0.5).id();
  std::vector<int64_t> done;
  net_.host(fast).execute(sim::msec(10), [&] { done.push_back(sim_.now().us); });
  sim_.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 5000);
}

TEST_F(NetworkTest, CrashDiscardsQueuedCpuWork) {
  bool ran = false;
  net_.host(a_).execute(sim::msec(10), [&] { ran = true; });
  net_.crash_host(a_);
  net_.restart_host(a_);
  sim_.run();
  EXPECT_FALSE(ran) << "work of the old incarnation must not run";
}

TEST_F(NetworkTest, DiskSurvivesCrash) {
  net_.host(a_).disk()["key"] = "value";
  net_.crash_host(a_);
  net_.restart_host(a_);
  EXPECT_EQ(net_.host(a_).disk()["key"], "value");
}

TEST_F(NetworkTest, HostLookupByName) {
  EXPECT_EQ(net_.host_by_name("b"), b_);
  EXPECT_THROW(net_.host_by_name("zzz"), std::out_of_range);
  EXPECT_THROW(net_.host(999), std::out_of_range);
}

TEST_F(NetworkTest, DoublePortBindThrows) {
  Sink sink(net_, b_, 10);
  EXPECT_THROW(Sink(net_, b_, 10), std::runtime_error);
}

}  // namespace
