#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace {

using sim::Simulation;

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now().us, 0);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(Simulation, EventsFireAtScheduledTimes) {
  Simulation s;
  std::vector<int64_t> fired;
  s.schedule(sim::msec(5), [&] { fired.push_back(s.now().us); });
  s.schedule(sim::msec(2), [&] { fired.push_back(s.now().us); });
  s.run();
  EXPECT_EQ(fired, (std::vector<int64_t>{2000, 5000}));
  EXPECT_EQ(s.now().us, 5000);
}

TEST(Simulation, SameTimeFifoOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    s.schedule(sim::msec(1), [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, NestedScheduling) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule(sim::msec(1), recurse);
  };
  s.schedule(sim::msec(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now().us, 5000);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  bool fired = false;
  sim::EventId id = s.schedule(sim::msec(1), [&] { fired = true; });
  s.cancel(id);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelIsIdempotentAndSafeAfterFire) {
  Simulation s;
  sim::EventId id = s.schedule(sim::msec(1), [] {});
  s.run();
  s.cancel(id);  // already fired: no-op
  s.cancel(999999);  // never existed: no-op
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation s;
  s.run_until(sim::Time{100000});
  EXPECT_EQ(s.now().us, 100000);
}

TEST(Simulation, RunUntilLeavesLaterEventsPending) {
  Simulation s;
  bool early = false, late = false;
  s.schedule(sim::msec(10), [&] { early = true; });
  s.schedule(sim::msec(100), [&] { late = true; });
  s.run_for(sim::msec(50));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_TRUE(late);
}

TEST(Simulation, StopAbortsRun) {
  Simulation s;
  int count = 0;
  for (int i = 0; i < 10; ++i)
    s.schedule(sim::msec(i), [&] {
      if (++count == 3) s.stop();
    });
  s.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulation, RejectsNegativeDelayAndPastTime) {
  Simulation s;
  EXPECT_THROW(s.schedule(sim::Duration{-1}, [] {}), std::invalid_argument);
  s.run_until(sim::Time{1000});
  EXPECT_THROW(s.schedule_at(sim::Time{500}, [] {}), std::invalid_argument);
}

TEST(Simulation, EventCountTracked) {
  Simulation s;
  for (int i = 0; i < 4; ++i) s.schedule(sim::msec(1), [] {});
  s.run();
  EXPECT_EQ(s.events_executed(), 4u);
}

TEST(SimTime, ArithmeticAndComparisons) {
  sim::Time t{1000};
  sim::Duration d = sim::msec(2);
  EXPECT_EQ((t + d).us, 3000);
  EXPECT_EQ(((t + d) - t).us, 2000);
  EXPECT_LT(t, t + d);
  EXPECT_EQ(sim::seconds(1).us, 1000000);
  EXPECT_EQ(sim::seconds_f(0.5).us, 500000);
  EXPECT_EQ(sim::minutes(2).us, 120000000);
  EXPECT_EQ(sim::hours(1).us, 3600000000LL);
  EXPECT_DOUBLE_EQ(sim::msec(1500).seconds(), 1.5);
  EXPECT_DOUBLE_EQ(sim::msec(1500).millis(), 1500.0);
  EXPECT_EQ((sim::msec(10) * 3).us, 30000);
  EXPECT_EQ((sim::msec(10) / 2).us, 5000);
}

}  // namespace
