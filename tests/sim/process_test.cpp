#include "sim/process.h"

#include <gtest/gtest.h>

namespace {

class Echo : public sim::Process {
 public:
  Echo(sim::Network& net, sim::HostId host, sim::Port port,
       bool replies = false)
      : sim::Process(net, host, port, "echo"), replies_(replies) {}
  void on_packet(sim::Packet packet) override {
    ++packets;
    if (replies_) send(packet.src, packet.data);
  }
  void on_crash() override { ++crashes; }
  void on_restart() override { ++restarts; }
  int packets = 0;
  int crashes = 0;
  int restarts = 0;

 private:
  bool replies_;
};

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest() : sim_(1), net_(sim_, sim::NetworkConfig{}) {
    a_ = net_.add_host("a").id();
    b_ = net_.add_host("b").id();
  }
  sim::Simulation sim_;
  sim::Network net_;
  sim::HostId a_, b_;
};

TEST_F(ProcessTest, EchoRoundTrip) {
  Echo pa(net_, a_, 10);
  Echo pb(net_, b_, 10, /*replies=*/true);
  pa.send({b_, 10}, {1, 2, 3});
  sim_.run();
  EXPECT_EQ(pb.packets, 1);
  EXPECT_EQ(pa.packets, 1) << "reply came back";
}

TEST_F(ProcessTest, TimerFires) {
  Echo p(net_, a_, 10);
  bool fired = false;
  p.set_timer(sim::msec(5), [&] { fired = true; });
  sim_.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim_.now().us, 5000);
}

TEST_F(ProcessTest, TimerCancellable) {
  Echo p(net_, a_, 10);
  bool fired = false;
  sim::TimerId id = p.set_timer(sim::msec(5), [&] { fired = true; });
  p.cancel_timer(id);
  sim_.run();
  EXPECT_FALSE(fired);
}

TEST_F(ProcessTest, TimersCancelledOnCrash) {
  Echo p(net_, a_, 10);
  bool fired = false;
  p.set_timer(sim::msec(5), [&] { fired = true; });
  net_.crash_host(a_);
  sim_.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(p.crashes, 1);
}

TEST_F(ProcessTest, RestartNotifies) {
  Echo p(net_, a_, 10);
  net_.crash_host(a_);
  net_.restart_host(a_);
  EXPECT_EQ(p.crashes, 1);
  EXPECT_EQ(p.restarts, 1);
}

TEST_F(ProcessTest, DestructorUnbindsPort) {
  {
    Echo p(net_, a_, 10);
  }
  Echo p2(net_, a_, 10);  // rebind must succeed
  SUCCEED();
}

TEST_F(ProcessTest, TimerSelfCleanupAllowsManyTimers) {
  Echo p(net_, a_, 10);
  int fired = 0;
  for (int i = 1; i <= 100; ++i)
    p.set_timer(sim::msec(i), [&] { ++fired; });
  sim_.run();
  EXPECT_EQ(fired, 100);
}

TEST_F(ProcessTest, EndpointAccessors) {
  Echo p(net_, a_, 10);
  EXPECT_EQ(p.endpoint().host, a_);
  EXPECT_EQ(p.endpoint().port, 10);
  EXPECT_TRUE(p.host_up());
  net_.crash_host(a_);
  EXPECT_FALSE(p.host_up());
}

}  // namespace
