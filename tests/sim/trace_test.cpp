#include "sim/trace.h"

#include <gtest/gtest.h>

namespace {

using sim::Trace;

TEST(Trace, RecordsInOrder) {
  Trace trace;
  trace.record(sim::Time{1000}, "gcs", "view 1 installed");
  trace.record(sim::Time{2000}, "pbs", "job 1 queued");
  ASSERT_EQ(trace.entries().size(), 2u);
  EXPECT_EQ(trace.entries()[0].category, "gcs");
  EXPECT_EQ(trace.entries()[1].at, sim::Time{2000});
}

TEST(Trace, CategoryFilter) {
  Trace trace;
  trace.record(sim::Time{1}, "a", "one");
  trace.record(sim::Time{2}, "b", "two");
  trace.record(sim::Time{3}, "a", "three");
  auto only_a = trace.in_category("a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].text, "three");
  EXPECT_TRUE(trace.in_category("zzz").empty());
}

TEST(Trace, ContainsSearchesText) {
  Trace trace;
  trace.record(sim::Time{1}, "pbs", "job 42 complete");
  EXPECT_TRUE(trace.contains("job 42"));
  EXPECT_FALSE(trace.contains("job 43"));
}

TEST(Trace, RenderFormatsSeconds) {
  Trace trace;
  trace.record(sim::Time{1500000}, "x", "hello");
  std::string out = trace.render();
  EXPECT_NE(out.find("t=1.500000"), std::string::npos);
  EXPECT_NE(out.find("[x] hello"), std::string::npos);
}

TEST(Trace, RenderDoesNotTruncateLongCategories) {
  // Regression: render() used to build "t=... [category] " in one fixed
  // 64-byte snprintf buffer, silently truncating long category names.
  Trace trace;
  std::string category(100, 'c');
  trace.record(sim::Time{1000000}, category, "payload");
  std::string out = trace.render();
  EXPECT_NE(out.find("[" + category + "] payload"), std::string::npos);
}

TEST(Trace, ClearEmpties) {
  Trace trace;
  trace.record(sim::Time{1}, "x", "y");
  trace.clear();
  EXPECT_TRUE(trace.entries().empty());
}

}  // namespace
