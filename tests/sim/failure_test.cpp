#include "sim/failure.h"

#include <gtest/gtest.h>

namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : sim_(1), net_(sim_, sim::NetworkConfig{}), faults_(net_) {
    a_ = net_.add_host("a").id();
    b_ = net_.add_host("b").id();
  }
  sim::Simulation sim_;
  sim::Network net_;
  sim::FailureInjector faults_;
  sim::HostId a_, b_;
};

TEST_F(FailureTest, ScriptedCrashAndRestart) {
  faults_.crash_at(a_, sim::Time{1000});
  faults_.restart_at(a_, sim::Time{5000});
  sim_.run_until(sim::Time{2000});
  EXPECT_FALSE(net_.host(a_).up());
  sim_.run_until(sim::Time{6000});
  EXPECT_TRUE(net_.host(a_).up());
}

TEST_F(FailureTest, OutageHelper) {
  faults_.outage(a_, sim::Time{1000}, sim::msec(4));
  sim_.run_until(sim::Time{3000});
  EXPECT_FALSE(net_.host(a_).up());
  sim_.run_until(sim::Time{10000});
  EXPECT_TRUE(net_.host(a_).up());
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 4000);
}

TEST_F(FailureTest, PartitionAndHeal) {
  faults_.partition(b_, 1, sim::Time{1000}, sim::Time{5000});
  sim_.run_until(sim::Time{2000});
  EXPECT_EQ(net_.host(b_).partition(), 1);
  sim_.run_until(sim::Time{6000});
  EXPECT_EQ(net_.host(b_).partition(), 0);
}

TEST_F(FailureTest, RandomFailuresRespectHorizon) {
  int count = faults_.random_failures(a_, sim::hours(1), sim::minutes(5),
                                      sim::Time{0} + sim::hours(24));
  EXPECT_GT(count, 5);
  sim_.run();
  EXPECT_TRUE(net_.host(a_).up()) << "every outage was repaired by horizon";
  // Downtime should be roughly count * 5 minutes.
  double mean_down = faults_.recorded_downtime(a_).seconds() / count;
  EXPECT_GT(mean_down, 30.0);
  EXPECT_LT(mean_down, 1800.0);
}

TEST_F(FailureTest, RandomFailuresDeterministicPerSeed) {
  // Same seed: not just the same count, the SAME schedule -- every
  // crash/restart instant must match to the microsecond (the longevity
  // campaigns rely on this for bit-identical reruns).
  sim::Simulation s2(1);
  sim::Network n2(s2, sim::NetworkConfig{});
  n2.add_host("a");
  n2.add_host("b");
  sim::FailureInjector f2(n2);
  int c1 = faults_.random_failures(a_, sim::hours(10), sim::hours(1),
                                   sim::Time{0} + sim::hours(100));
  int c2 = f2.random_failures(0, sim::hours(10), sim::hours(1),
                              sim::Time{0} + sim::hours(100));
  EXPECT_EQ(c1, c2);
  ASSERT_EQ(faults_.outages().size(), f2.outages().size());
  for (size_t i = 0; i < faults_.outages().size(); ++i) {
    EXPECT_EQ(faults_.outages()[i].down.us, f2.outages()[i].down.us)
        << "outage " << i;
    EXPECT_EQ(faults_.outages()[i].up.us, f2.outages()[i].up.us)
        << "outage " << i;
  }
}

TEST_F(FailureTest, RandomFailuresDifferentSeedsDiverge) {
  sim::Simulation s2(99);
  sim::Network n2(s2, sim::NetworkConfig{});
  n2.add_host("a");
  sim::FailureInjector f2(n2);
  faults_.random_failures(a_, sim::hours(10), sim::hours(1),
                          sim::Time{0} + sim::hours(100));
  f2.random_failures(0, sim::hours(10), sim::hours(1),
                     sim::Time{0} + sim::hours(100));
  // Counts may coincide; the schedules must not be identical.
  bool identical = faults_.outages().size() == f2.outages().size();
  if (identical) {
    for (size_t i = 0; i < faults_.outages().size(); ++i) {
      if (faults_.outages()[i].down.us != f2.outages()[i].down.us ||
          faults_.outages()[i].up.us != f2.outages()[i].up.us) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical) << "different seeds drew the same outage schedule";
}

TEST_F(FailureTest, OverlappingOutagesAreNotDoubleCounted) {
  // Two scripted outages overlap on [2000, 4000); a host is either up or
  // down, so the union [1000, 6000) is the real downtime, not the sum.
  faults_.crash_at(a_, sim::Time{1000});
  faults_.restart_at(a_, sim::Time{4000});
  faults_.crash_at(a_, sim::Time{2000});
  faults_.restart_at(a_, sim::Time{6000});
  sim_.run_until(sim::Time{10000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 5000);
}

TEST_F(FailureTest, ContainedOutageAddsNothing) {
  faults_.crash_at(a_, sim::Time{1000});
  faults_.restart_at(a_, sim::Time{9000});
  faults_.crash_at(a_, sim::Time{3000});
  faults_.restart_at(a_, sim::Time{5000});
  sim_.run_until(sim::Time{20000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 8000);
}

TEST_F(FailureTest, UnterminatedOutageExtendsToNow) {
  faults_.crash_at(a_, sim::Time{1000});
  sim_.run_until(sim::Time{4000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 3000);
  // It keeps growing as simulated time advances...
  sim_.run_until(sim::Time{7000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 6000);
  // ...and merges with an overlapping closed outage instead of stacking.
  faults_.crash_at(a_, sim::Time{8000});
  faults_.restart_at(a_, sim::Time{9000});
  sim_.run_until(sim::Time{10000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 9000);
}

TEST_F(FailureTest, DowntimeIsPerHost) {
  faults_.outage(a_, sim::Time{1000}, sim::msec(2));
  faults_.outage(b_, sim::Time{1000}, sim::msec(5));
  sim_.run_until(sim::Time{20000});
  EXPECT_EQ(faults_.recorded_downtime(a_).us, 2000);
  EXPECT_EQ(faults_.recorded_downtime(b_).us, 5000);
}

TEST_F(FailureTest, OutagesRecorded) {
  faults_.outage(a_, sim::Time{1000}, sim::msec(1));
  faults_.crash_at(b_, sim::Time{2000});
  ASSERT_EQ(faults_.outages().size(), 2u);
  EXPECT_EQ(faults_.outages()[0].host, a_);
  EXPECT_EQ(faults_.outages()[1].up, sim::kTimeInfinity);
}

// -- compute-plane faults ----------------------------------------------------

TEST_F(FailureTest, MomHangIsUnreachableButAlive) {
  faults_.mom_hang(b_, sim::Time{1000}, sim::Time{5000});
  sim_.run_until(sim::Time{2000});
  EXPECT_TRUE(net_.host(b_).up()) << "a hang is not a crash";
  EXPECT_EQ(net_.host(b_).partition(), 1000 + static_cast<int>(b_));
  sim_.run_until(sim::Time{6000});
  EXPECT_EQ(net_.host(b_).partition(), 0);
  ASSERT_EQ(faults_.compute_faults().size(), 1u);
  EXPECT_EQ(faults_.compute_faults()[0].kind,
            sim::FailureInjector::ComputeFaultKind::kHang);
  EXPECT_EQ(faults_.compute_faults()[0].host, b_);
  EXPECT_EQ(faults_.recorded_downtime(b_).us, 0)
      << "hangs must not appear in the crash/outage ledger";
}

TEST_F(FailureTest, SegmentPartitionTakesTheWholeSegment) {
  faults_.segment_partition({a_, b_}, 7, sim::Time{1000}, sim::Time{4000});
  sim_.run_until(sim::Time{2000});
  EXPECT_EQ(net_.host(a_).partition(), 7);
  EXPECT_EQ(net_.host(b_).partition(), 7);
  sim_.run_until(sim::Time{5000});
  EXPECT_EQ(net_.host(a_).partition(), 0);
  EXPECT_EQ(net_.host(b_).partition(), 0);
  ASSERT_EQ(faults_.compute_faults().size(), 2u);
  for (const auto& f : faults_.compute_faults()) {
    EXPECT_EQ(f.kind, sim::FailureInjector::ComputeFaultKind::kPartition);
    EXPECT_EQ(f.at.us, 1000);
    EXPECT_EQ(f.heal.us, 4000);
  }
}

TEST_F(FailureTest, RandomComputeFaultsDeterministicPerSeed) {
  // Same seed, same pool: the whole fault ledger -- victim, kind, and both
  // instants -- must be identical (campaign reruns depend on it).
  sim::Simulation s2(1);
  sim::Network n2(s2, sim::NetworkConfig{});
  n2.add_host("a");
  n2.add_host("b");
  sim::FailureInjector f2(n2);
  int c1 = faults_.random_compute_faults({a_, b_}, sim::hours(4),
                                         sim::minutes(5),
                                         sim::Time{0} + sim::hours(100));
  int c2 = f2.random_compute_faults({0, 1}, sim::hours(4), sim::minutes(5),
                                    sim::Time{0} + sim::hours(100));
  EXPECT_EQ(c1, c2);
  ASSERT_EQ(faults_.compute_faults().size(), f2.compute_faults().size());
  for (size_t i = 0; i < faults_.compute_faults().size(); ++i) {
    const auto& x = faults_.compute_faults()[i];
    const auto& y = f2.compute_faults()[i];
    EXPECT_EQ(x.host, y.host) << "fault " << i;
    EXPECT_EQ(x.kind, y.kind) << "fault " << i;
    EXPECT_EQ(x.at.us, y.at.us) << "fault " << i;
    EXPECT_EQ(x.heal.us, y.heal.us) << "fault " << i;
  }
}

TEST_F(FailureTest, RandomComputeFaultsMixKindsWithinHorizon) {
  int count = faults_.random_compute_faults({a_, b_}, sim::hours(2),
                                            sim::minutes(5),
                                            sim::Time{0} + sim::hours(400));
  EXPECT_GT(count, 50) << "pooled process: ~1 fault per pool-hour expected";
  bool saw_crash = false, saw_hang = false, saw_partition = false;
  for (const auto& f : faults_.compute_faults()) {
    EXPECT_TRUE(f.host == a_ || f.host == b_);
    EXPECT_LE(f.heal.us, (sim::Time{0} + sim::hours(400)).us);
    EXPECT_LT(f.at.us, f.heal.us);
    switch (f.kind) {
      case sim::FailureInjector::ComputeFaultKind::kCrash: saw_crash = true; break;
      case sim::FailureInjector::ComputeFaultKind::kHang: saw_hang = true; break;
      case sim::FailureInjector::ComputeFaultKind::kPartition:
        saw_partition = true;
        break;
    }
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_hang);
  EXPECT_TRUE(saw_partition);
  sim_.run();
  EXPECT_TRUE(net_.host(a_).up());
  EXPECT_TRUE(net_.host(b_).up());
  EXPECT_EQ(net_.host(a_).partition(), 0);
  EXPECT_EQ(net_.host(b_).partition(), 0);
}

}  // namespace
