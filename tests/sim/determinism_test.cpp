// Regression tests for the two hard invariants of the pooled event core:
// bit-reproducibility (identical seeds produce identical event order and
// simulated-time results) and lazy cancellation correctness under heavy
// schedule/cancel churn.
#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace {

using sim::Simulation;

/// One executed event as observed by the workload: (fire time, label).
struct TraceEntry {
  int64_t time_us;
  uint64_t label;
  bool operator==(const TraceEntry&) const = default;
};

/// Seeded random workload: a self-sustaining window of events where each
/// firing reschedules followers at rng-chosen offsets, cancels a random
/// recent event every few steps, and records everything it executes. Any
/// divergence between runs -- heap tie-breaks, slot recycling order, rng
/// consumption -- shows up as a trace mismatch.
std::vector<TraceEntry> run_workload(uint64_t seed, int target_events) {
  Simulation s(seed);
  std::vector<TraceEntry> trace;
  std::deque<sim::EventId> recent;
  uint64_t next_label = 0;

  std::function<void(uint64_t)> fire = [&](uint64_t label) {
    trace.push_back({s.now().us, label});
    if (trace.size() >= static_cast<size_t>(target_events)) {
      s.stop();
      return;
    }
    int children = static_cast<int>(s.rng().uniform(1, 3));
    for (int i = 0; i < children; ++i) {
      uint64_t label2 = ++next_label;
      sim::Duration delay = sim::usec(s.rng().uniform(0, 500));
      recent.push_back(s.schedule(delay, [&fire, label2] { fire(label2); }));
    }
    if (recent.size() > 8 && s.rng().uniform(0, 3) == 0) {
      size_t pick = s.rng().uniform(0, recent.size() - 1);
      s.cancel(recent[pick]);  // may already have fired: must be a no-op
      recent.erase(recent.begin() + pick);
    }
    while (recent.size() > 64) recent.pop_front();
  };

  for (int i = 0; i < 4; ++i) {
    uint64_t label = ++next_label;
    s.schedule(sim::usec(i), [&fire, label] { fire(label); });
  }
  s.run();
  trace.push_back({s.now().us, s.events_executed()});
  return trace;
}

TEST(Determinism, SameSeedSameTraceAcrossRuns) {
  std::vector<TraceEntry> first = run_workload(42, 20000);
  std::vector<TraceEntry> second = run_workload(42, 20000);
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second)
      << "identical seed must reproduce the event order bit-for-bit";
}

TEST(Determinism, DifferentSeedsDiverge) {
  // Sanity check that the workload is actually seed-sensitive (otherwise the
  // test above proves nothing).
  EXPECT_NE(run_workload(42, 5000), run_workload(43, 5000));
}

TEST(CancellationStress, InterleavedScheduleCancel) {
  constexpr int kOps = 100000;
  Simulation s(7);
  std::vector<sim::EventId> armed;
  armed.reserve(kOps);
  int fired = 0;
  int cancelled = 0;
  int fired_cancelled = 0;  // events that fire after being cancelled: bug

  for (int i = 0; i < kOps; ++i) {
    // Interleave: schedule, and every third op cancel a pseudo-random
    // earlier event (some already cancelled, exercising idempotence).
    armed.push_back(
        s.schedule(sim::usec(s.rng().uniform(0, 2000)), [&] { ++fired; }));
    if (i % 3 == 2) {
      sim::EventId victim = armed[s.rng().uniform(0, armed.size() - 1)];
      if (s.event_pending(victim)) ++cancelled;
      s.cancel(victim);
      if (s.event_pending(victim)) ++fired_cancelled;
      s.cancel(victim);  // double-cancel must stay a no-op
    }
    ASSERT_EQ(s.pending_events(), static_cast<size_t>(i + 1 - cancelled))
        << "pending_events() drifted at op " << i;
  }

  s.run();
  EXPECT_EQ(fired_cancelled, 0);
  EXPECT_EQ(fired, kOps - cancelled) << "every uncancelled event fires once";
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_GT(cancelled, kOps / 10) << "stress must actually cancel events";

  // Stale ids: every handle is now dead; cancel must not disturb new work.
  for (sim::EventId id : armed) {
    EXPECT_FALSE(s.event_pending(id));
    s.cancel(id);
  }
  bool late = false;
  s.schedule(sim::usec(1), [&] { late = true; });
  EXPECT_EQ(s.pending_events(), 1u);
  s.run();
  EXPECT_TRUE(late);
}

TEST(CancellationStress, CancelAllThenDrainKeepsClockMonotone) {
  Simulation s(9);
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(s.schedule(sim::usec(1000 - i), [] {}));
  for (sim::EventId id : ids) s.cancel(id);
  EXPECT_EQ(s.pending_events(), 0u);
  // Corpses are still in the heap; draining them must not move the clock.
  EXPECT_FALSE(s.step());
  EXPECT_EQ(s.now().us, 0);
  EXPECT_EQ(s.next_event_time(), sim::kTimeInfinity);
}

}  // namespace
