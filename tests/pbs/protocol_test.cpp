#include "pbs/protocol.h"

#include <gtest/gtest.h>

namespace {

using namespace pbs;

JobSpec sample_spec() {
  JobSpec s;
  s.name = "climate-sim";
  s.user = "alice";
  s.nodes = 3;
  s.walltime = sim::minutes(30);
  s.run_time = sim::seconds(90);
  s.priority = -2;
  s.script = "#!/bin/sh\nmpirun ./climate\n";
  return s;
}

Job sample_job() {
  Job j;
  j.id = 17;
  j.spec = sample_spec();
  j.state = JobState::kRunning;
  j.submit_time = sim::Time{1000};
  j.start_time = sim::Time{2000};
  j.end_time = sim::Time{0};
  j.exit_code = 0;
  j.queue_rank = 4;
  j.exec_host = 9;
  return j;
}

TEST(PbsJob, SpecRoundTrip) {
  net::Writer w;
  encode_job_spec(w, sample_spec());
  sim::Payload buf = w.take();
  net::Reader r(buf);
  JobSpec back = decode_job_spec(r);
  EXPECT_EQ(back.name, "climate-sim");
  EXPECT_EQ(back.user, "alice");
  EXPECT_EQ(back.nodes, 3u);
  EXPECT_EQ(back.walltime, sim::minutes(30));
  EXPECT_EQ(back.run_time, sim::seconds(90));
  EXPECT_EQ(back.priority, -2);
  EXPECT_EQ(back.script, sample_spec().script);
}

TEST(PbsJob, JobRoundTrip) {
  net::Writer w;
  encode_job(w, sample_job());
  sim::Payload buf = w.take();
  net::Reader r(buf);
  Job back = decode_job(r);
  EXPECT_EQ(back.id, 17u);
  EXPECT_EQ(back.state, JobState::kRunning);
  EXPECT_EQ(back.queue_rank, 4u);
  EXPECT_EQ(back.exec_host, 9u);
  EXPECT_TRUE(back.active());
  EXPECT_FALSE(back.terminal());
}

TEST(PbsJob, StateHelpers) {
  EXPECT_EQ(state_letter(JobState::kQueued), 'Q');
  EXPECT_EQ(state_letter(JobState::kRunning), 'R');
  EXPECT_EQ(state_letter(JobState::kComplete), 'C');
  EXPECT_EQ(state_letter(JobState::kHeld), 'H');
  EXPECT_EQ(to_string(JobState::kExiting), "EXITING");
  EXPECT_EQ(job_id_string(12, "cluster"), "12.cluster");
}

TEST(PbsProtocol, SubmitRoundTrip) {
  sim::Payload buf = encode_request(SubmitRequest{sample_spec()});
  EXPECT_EQ(peek_op(buf), Op::kSubmit);
  SubmitRequest back = decode_submit(buf);
  EXPECT_EQ(back.spec.name, "climate-sim");
}

TEST(PbsProtocol, AllSimpleRequestsRoundTrip) {
  EXPECT_EQ(decode_delete(encode_request(DeleteRequest{7})).job_id, 7u);
  SignalRequest sig = decode_signal(encode_request(SignalRequest{8, 9}));
  EXPECT_EQ(sig.job_id, 8u);
  EXPECT_EQ(sig.signal, 9);
  EXPECT_EQ(decode_hold(encode_request(HoldRequest{3})).job_id, 3u);
  EXPECT_EQ(decode_release(encode_request(ReleaseRequest{4})).job_id, 4u);
  StatRequest st = decode_stat(encode_request(StatRequest{5, false}));
  EXPECT_EQ(st.job_id, 5u);
  EXPECT_FALSE(st.include_complete);
}

TEST(PbsProtocol, MomMessagesRoundTrip) {
  MomLaunchRequest launch{sample_job(), 2};
  MomLaunchRequest lb = decode_mom_launch(encode_request(launch));
  EXPECT_EQ(lb.job.id, 17u);
  EXPECT_EQ(lb.server_host, 2u);

  MomKillRequest kill{17, 2};
  MomKillRequest kb = decode_mom_kill(encode_request(kill));
  EXPECT_EQ(kb.job_id, 17u);

  MomEmuCompleteRequest emu{17, 3};
  MomEmuCompleteRequest eb = decode_mom_emu_complete(encode_request(emu));
  EXPECT_EQ(eb.exit_code, 3);

  JobReport report{17, 271, true, sim::Time{10}, sim::Time{20}, 5};
  JobReport rb = decode_job_report(encode_request(report));
  EXPECT_EQ(rb.job_id, 17u);
  EXPECT_EQ(rb.exit_code, 271);
  EXPECT_TRUE(rb.cancelled);
  EXPECT_EQ(rb.start_time, sim::Time{10});
  EXPECT_EQ(rb.mom_host, 5u);
}

TEST(PbsProtocol, StateMessagesRoundTrip) {
  LoadStateRequest load{{1, 2, 3}};
  EXPECT_EQ(decode_load_state(encode_request(load)).state,
            (sim::Payload{1, 2, 3}));
  DumpStateResponse dump{Status::kOk, {4, 5}};
  EXPECT_EQ(decode_dump_state_response(encode_response(dump)).state,
            (sim::Payload{4, 5}));
}

TEST(PbsProtocol, ResponsesRoundTrip) {
  SubmitResponse sub{Status::kOk, 42};
  SubmitResponse sb = decode_submit_response(encode_response(sub));
  EXPECT_EQ(sb.job_id, 42u);
  EXPECT_EQ(sb.status, Status::kOk);

  StatResponse stat{Status::kOk, {sample_job()}};
  StatResponse stb = decode_stat_response(encode_response(stat));
  ASSERT_EQ(stb.jobs.size(), 1u);
  EXPECT_EQ(stb.jobs[0].id, 17u);

  SimpleResponse simple{Status::kUnknownJob};
  EXPECT_EQ(decode_simple_response(encode_response(simple)).status,
            Status::kUnknownJob);

  MomLaunchResponse launch{Status::kOk, true};
  MomLaunchResponse lb = decode_mom_launch_response(encode_response(launch));
  EXPECT_TRUE(lb.emulated);
}

TEST(PbsProtocol, OpMismatchAndTruncationThrow) {
  sim::Payload buf = encode_request(DeleteRequest{7});
  EXPECT_THROW(decode_hold(buf), net::WireError);
  buf.resize(2);
  EXPECT_THROW(decode_delete(buf), net::WireError);
  EXPECT_THROW(peek_op(sim::Payload{}), net::WireError);
}

TEST(PbsProtocol, StatusStrings) {
  EXPECT_EQ(to_string(Status::kOk), "ok");
  EXPECT_EQ(to_string(Status::kUnknownJob), "unknown job");
  EXPECT_EQ(to_string(Status::kUnsupported), "operation not supported");
}

}  // namespace
