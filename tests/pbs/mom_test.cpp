#include "pbs/mom.h"

#include <gtest/gtest.h>

#include "pbs/pbs_harness.h"

namespace {

using pbstest::PbsHarness;
using namespace pbs;

TEST(Mom, ExecutesAndReports) {
  PbsHarness h(1);
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(300)));
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete));
  EXPECT_EQ(h.moms[0]->jobs_executed(), 1u);
  EXPECT_GE(h.moms[0]->reports_sent(), 1u);
  const auto& inst = h.moms[0]->instances().at(id);
  EXPECT_EQ(inst.state, Mom::InstanceState::kComplete);
  EXPECT_TRUE(inst.real_run_here);
  EXPECT_EQ(inst.end_time - inst.start_time, sim::msec(300));
}

TEST(Mom, PrologueRunDecisionExecutes) {
  PbsHarness h(1);
  int prologue_calls = 0;
  h.moms[0]->set_prologue([&](const Job&, sim::HostId,
                              std::function<void(PrologueDecision)> done) {
    ++prologue_calls;
    done(PrologueDecision::kRun);
  });
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete));
  EXPECT_EQ(prologue_calls, 1);
  EXPECT_EQ(h.moms[0]->jobs_executed(), 1u);
}

TEST(Mom, PrologueEmulateDoesNotExecute) {
  PbsHarness h(1);
  h.moms[0]->set_prologue([&](const Job&, sim::HostId,
                              std::function<void(PrologueDecision)> done) {
    done(PrologueDecision::kEmulate);
  });
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    return h.server->find_job(id)->state == JobState::kRunning;
  }));
  h.sim.run_for(sim::seconds(3));
  EXPECT_EQ(h.moms[0]->jobs_executed(), 0u);
  EXPECT_EQ(h.moms[0]->launches_emulated(), 1u);
  // The emulated instance completes when EmuComplete arrives (e.g. from a
  // head that saw the real run elsewhere).
  const auto& inst = h.moms[0]->instances().at(id);
  EXPECT_EQ(inst.state, Mom::InstanceState::kEmulated);
}

TEST(Mom, EmuCompleteFinishesEmulatedInstance) {
  PbsHarness h(1);
  h.moms[0]->set_prologue([&](const Job&, sim::HostId,
                              std::function<void(PrologueDecision)> done) {
    done(PrologueDecision::kEmulate);
  });
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    return h.moms[0]->instances().count(id) > 0;
  }));
  // Simulate a head notifying the emulated instance.
  pbs::ClientConfig ccfg = pbs::client_config_from(
      sim::fast_calibration(), sim::Endpoint{h.compute[0], 15002});
  pbs::Client head_stub(h.net, h.head, 23000, ccfg);
  bool acked = false;
  // Reuse the raw RPC plumbing through a one-off call.
  head_stub.qdel(0, [&](auto) {});  // prime nothing; direct emu below
  // Direct EmuComplete via the wire:
  h.sim.run_for(sim::msec(50));
  // (send as a raw RPC request through a fresh client call path)
  struct Raw : net::RpcNode {
    using net::RpcNode::RpcNode;
    void on_request(sim::Payload, sim::Endpoint, uint64_t) override {}
  } raw(h.net, h.head, 23500, "raw");
  raw.call(sim::Endpoint{h.compute[0], 15002},
           encode_request(MomEmuCompleteRequest{id, 0}),
           [&](std::optional<sim::Payload> r) { acked = r.has_value(); });
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(30)));
  EXPECT_TRUE(acked);
}

TEST(Mom, PrologueAbortRequeuesEventually) {
  PbsHarness h(1);
  int calls = 0;
  h.moms[0]->set_prologue([&](const Job&, sim::HostId,
                              std::function<void(PrologueDecision)> done) {
    ++calls;
    done(calls == 1 ? PrologueDecision::kAbort : PrologueDecision::kRun);
  });
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  // First launch aborted -> server requeues -> second launch runs.
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(120)));
  EXPECT_GE(calls, 2);
}

TEST(Mom, EpilogueRunsBeforeReports) {
  PbsHarness h(1);
  std::vector<std::string> order;
  h.moms[0]->set_epilogue([&](const Job&, int32_t,
                              std::function<void()> done) {
    order.push_back("epilogue");
    done();
  });
  h.server->on_job_complete = [&](const Job&) { order.push_back("report"); };
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "epilogue");
  EXPECT_EQ(order[1], "report");
}

TEST(Mom, SecondLaunchAttachesAndBothServersReported) {
  // Two PBS servers sharing one mom (the TORQUE 2.0p1 multi-server
  // feature): both launch the same job id; the second attaches.
  PbsHarness h(1);
  sim::HostId head2 = h.net.add_host("head2").id();
  pbs::ServerConfig cfg2 = pbs::server_config_from(sim::fast_calibration());
  cfg2.port = 15001;
  cfg2.moms = {{h.compute[0], 15002}};
  cfg2.sched_interval = sim::msec(100);
  pbs::Server server2(h.net, head2, cfg2);

  Client& c1 = h.make_client();
  pbs::ClientConfig ccfg2 = pbs::client_config_from(
      sim::fast_calibration(), sim::Endpoint{head2, 15001});
  pbs::Client c2(h.net, h.login, 23600, ccfg2);

  JobId id1 = h.submit(c1, h.quick_job(sim::msec(400)));
  pbs::JobId id2 = pbs::kInvalidJob;
  c2.qsub(h.quick_job(sim::msec(400)),
          [&](auto r) { id2 = r ? r->job_id : pbs::kInvalidJob; });
  testutil::run_until(h.sim, [&] { return id2 != pbs::kInvalidJob; });
  ASSERT_EQ(id1, id2) << "deterministic ids: both servers assigned job 1";

  ASSERT_TRUE(h.wait_state(id1, JobState::kComplete));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    auto j = server2.find_job(id2);
    return j && j->state == JobState::kComplete;
  }));
  EXPECT_EQ(h.moms[0]->jobs_executed(), 1u) << "job ran exactly once";
  EXPECT_EQ(h.moms[0]->launches_emulated(), 1u);
}

TEST(Mom, QuirkHoldsReportForDeadHead) {
  // The paper's observed TORQUE deficiency: with the quirk on, the mom
  // retries the report until the head returns.
  auto tweak_mom = [](MomConfig& cfg) {
    cfg.quirk_hold_on_head_failure = true;
    cfg.report_retry = sim::msec(200);
  };
  PbsHarness h(1, 1, nullptr, tweak_mom);
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(300)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  h.net.crash_host(h.head);
  h.sim.run_for(sim::seconds(3));  // job finishes; reports keep retrying
  uint64_t attempts_while_down = h.moms[0]->reports_sent();
  EXPECT_GT(attempts_while_down, 2u) << "quirk keeps retrying";
  h.net.restart_host(h.head);
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(30)))
      << "returned head finally gets the held report";
}

TEST(Mom, FixedBehaviourDropsReportForDeadHead) {
  auto tweak_mom = [](MomConfig& cfg) {
    cfg.quirk_hold_on_head_failure = false;
    cfg.report_attempts = 2;
    cfg.report_retry = sim::msec(200);
  };
  PbsHarness h(1, 1, nullptr, tweak_mom);
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::msec(300)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  h.net.crash_host(h.head);
  h.sim.run_for(sim::seconds(5));
  uint64_t sent = h.moms[0]->reports_sent();
  h.sim.run_for(sim::seconds(5));
  EXPECT_EQ(h.moms[0]->reports_sent(), sent)
      << "fixed mom gave up on the dead head";
}

TEST(Mom, CrashKillsRunningJobs) {
  PbsHarness h(1);
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::seconds(60)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  h.net.crash_host(h.compute[0]);
  h.sim.run_for(sim::seconds(1));
  EXPECT_TRUE(h.moms[0]->instances().empty())
      << "compute-node fault tolerance is out of scope (paper Section 5)";
}

}  // namespace
