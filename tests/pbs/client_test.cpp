#include "pbs/client.h"

#include <gtest/gtest.h>

#include "pbs/pbs_harness.h"

namespace {

using pbstest::PbsHarness;
using namespace pbs;

TEST(PbsClient, TimesOutAgainstDeadServer) {
  PbsHarness h;
  Client& client = h.make_client();
  h.net.crash_host(h.head);
  bool called = false;
  std::optional<SubmitResponse> got{SubmitResponse{}};
  client.qsub(h.quick_job(), [&](std::optional<SubmitResponse> r) {
    called = true;
    got = r;
  });
  testutil::run_until(h.sim, [&] { return called; }, sim::seconds(30));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value());
}

TEST(PbsClient, CommandCostsShowUpInLatency) {
  PbsHarness h;
  Client& client = h.make_client();
  sim::Time start = h.sim.now();
  bool done = false;
  client.qsub(h.quick_job(), [&](auto) { done = true; });
  testutil::run_until(h.sim, [&] { return done; }, sim::seconds(10),
                      sim::usec(50));
  sim::Duration latency = h.sim.now() - start;
  const auto& cal = sim::fast_calibration();
  EXPECT_GE(latency.us, (cal.cmd_startup + cal.pbs_submit_proc +
                         cal.cmd_teardown).us);
}

TEST(PbsClient, SetServerRetargets) {
  PbsHarness h;
  sim::HostId head2 = h.net.add_host("head2").id();
  ServerConfig cfg2 = server_config_from(sim::fast_calibration());
  cfg2.port = 15001;
  cfg2.moms = {{h.compute[0], 15002}};
  Server server2(h.net, head2, cfg2);

  Client& client = h.make_client();
  client.set_server({head2, 15001});
  JobId id = h.submit(client, h.quick_job(sim::seconds(60)));
  EXPECT_NE(id, kInvalidJob);
  EXPECT_EQ(server2.jobs().size(), 1u);
  EXPECT_TRUE(h.server->jobs().empty());
}

TEST(PbsClient, SequentialSubmissionsSerializeLatency) {
  // Throughput = serialized latency for a single-client submit loop; this
  // is the microscopic mechanism behind Figure 11.
  PbsHarness h;
  Client& client = h.make_client();
  sim::Time start = h.sim.now();
  int done = 0;
  std::function<void()> next = [&] {
    client.qsub(h.quick_job(sim::seconds(600)), [&](auto) {
      ++done;
      if (done < 5) next();
    });
  };
  next();
  testutil::run_until(h.sim, [&] { return done == 5; }, sim::seconds(60),
                      sim::usec(100));
  sim::Duration total = h.sim.now() - start;

  // One-shot latency for comparison.
  PbsHarness h2;
  Client& client2 = h2.make_client();
  sim::Time s2 = h2.sim.now();
  bool one = false;
  client2.qsub(h2.quick_job(sim::seconds(600)), [&](auto) { one = true; });
  testutil::run_until(h2.sim, [&] { return one; }, sim::seconds(60),
                      sim::usec(100));
  sim::Duration single = h2.sim.now() - s2;

  EXPECT_GE(total.us, single.us * 4) << "5 sequential submits ~ 5x latency";
  EXPECT_LE(total.us, single.us * 6);
}

}  // namespace
