#include "pbs/server.h"

#include <gtest/gtest.h>

#include "pbs/pbs_harness.h"

namespace {

using pbstest::PbsHarness;
using namespace pbs;

TEST(PbsServer, SubmitRunsToCompletion) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job());
  ASSERT_NE(id, kInvalidJob);
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete));
  Job job = *h.server->find_job(id);
  EXPECT_EQ(job.exit_code, 0);
  EXPECT_GT(job.end_time, job.start_time);
  EXPECT_GE(job.start_time, job.submit_time);
  EXPECT_EQ(h.moms[0]->jobs_executed() + h.moms[1]->jobs_executed(), 1u);
}

TEST(PbsServer, JobIdsMonotonic) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId a = h.submit(client, h.quick_job());
  JobId b = h.submit(client, h.quick_job());
  JobId c = h.submit(client, h.quick_job());
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST(PbsServer, FifoExclusiveRunsSequentially) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId a = h.submit(client, h.quick_job(sim::msec(300)));
  JobId b = h.submit(client, h.quick_job(sim::msec(300)));
  ASSERT_TRUE(h.wait_state(b, JobState::kComplete));
  Job ja = *h.server->find_job(a);
  Job jb = *h.server->find_job(b);
  EXPECT_GE(jb.start_time, ja.end_time)
      << "exclusive cluster: b must wait for a";
}

TEST(PbsServer, StatAllAndSingle) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId a = h.submit(client, h.quick_job());
  h.submit(client, h.quick_job());

  std::optional<StatResponse> all;
  client.qstat(StatRequest{}, [&](auto r) { all = r; });
  testutil::run_until(h.sim, [&] { return all.has_value(); });
  EXPECT_EQ(all->jobs.size(), 2u);

  std::optional<StatResponse> one;
  client.qstat(StatRequest{a, true}, [&](auto r) { one = r; });
  testutil::run_until(h.sim, [&] { return one.has_value(); });
  ASSERT_EQ(one->jobs.size(), 1u);
  EXPECT_EQ(one->jobs[0].id, a);

  std::optional<StatResponse> missing;
  client.qstat(StatRequest{999, true}, [&](auto r) { missing = r; });
  testutil::run_until(h.sim, [&] { return missing.has_value(); });
  EXPECT_EQ(missing->status, Status::kUnknownJob);
}

TEST(PbsServer, StatExcludesCompleteWhenAsked) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId a = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(h.wait_state(a, JobState::kComplete));
  h.submit(client, h.quick_job(sim::seconds(30)));
  std::optional<StatResponse> active;
  client.qstat(StatRequest{kInvalidJob, false}, [&](auto r) { active = r; });
  testutil::run_until(h.sim, [&] { return active.has_value(); });
  ASSERT_EQ(active->jobs.size(), 1u);
  EXPECT_NE(active->jobs[0].id, a);
}

TEST(PbsServer, DeleteQueuedJob) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId blocker = h.submit(client, h.quick_job(sim::seconds(60)));
  JobId victim = h.submit(client, h.quick_job());
  (void)blocker;
  std::optional<SimpleResponse> resp;
  client.qdel(victim, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kOk);
  Job job = *h.server->find_job(victim);
  EXPECT_EQ(job.state, JobState::kComplete);
  EXPECT_TRUE(job.cancelled);
}

TEST(PbsServer, DeleteRunningJobKillsOnMom) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::seconds(60)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  std::optional<SimpleResponse> resp;
  client.qdel(id, [&](auto r) { resp = r; });
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(30)));
  Job job = *h.server->find_job(id);
  EXPECT_TRUE(job.cancelled);
  EXPECT_EQ(job.exit_code, 271) << "TORQUE signal-death convention";
}

TEST(PbsServer, DeleteUnknownAndDoubleDelete) {
  PbsHarness h;
  Client& client = h.make_client();
  std::optional<SimpleResponse> resp;
  client.qdel(42, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kUnknownJob);

  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete));
  resp.reset();
  client.qdel(id, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kInvalidState) << "already complete";
}

TEST(PbsServer, HoldPreventsStartUntilRelease) {
  PbsHarness h;
  Client& client = h.make_client();
  // Block the cluster briefly so the hold lands while queued.
  JobId blocker = h.submit(client, h.quick_job(sim::seconds(5)));
  (void)blocker;
  JobId id = h.submit(client, h.quick_job(sim::msec(100)));
  std::optional<SimpleResponse> resp;
  client.qhold(id, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kOk);
  // The blocker finishes; the held job must NOT start.
  ASSERT_TRUE(h.wait_state(blocker, JobState::kComplete, sim::seconds(30)));
  h.sim.run_for(sim::seconds(2));
  EXPECT_EQ(h.server->find_job(id)->state, JobState::kHeld);

  resp.reset();
  client.qrls(id, [&](auto r) { resp = r; });
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(30)));
}

TEST(PbsServer, HoldRunningJobRejected) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::seconds(60)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  std::optional<SimpleResponse> resp;
  client.qhold(id, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kInvalidState);
}

TEST(PbsServer, SignalTerminatesRunningJob) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::seconds(60)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  std::optional<SimpleResponse> resp;
  client.qsig(id, 15, [&](auto r) { resp = r; });
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete, sim::seconds(30)));
  EXPECT_TRUE(h.server->find_job(id)->cancelled);
}

TEST(PbsServer, BenignSignalDoesNotKill) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId id = h.submit(client, h.quick_job(sim::seconds(2)));
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  std::optional<SimpleResponse> resp;
  client.qsig(id, 10 /*SIGUSR1*/, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  EXPECT_EQ(resp->status, Status::kOk);
  EXPECT_EQ(h.server->find_job(id)->state, JobState::kRunning);
  EXPECT_TRUE(h.wait_state(id, JobState::kComplete));
  EXPECT_FALSE(h.server->find_job(id)->cancelled);
}

TEST(PbsServer, MultiNodeJobAllocatesRequestedNodes) {
  auto tweak = [](ServerConfig& cfg) {
    cfg.sched.exclusive_cluster = false;
  };
  PbsHarness h(3, 1, tweak);
  Client& client = h.make_client();
  JobSpec spec = h.quick_job(sim::seconds(1));
  spec.nodes = 2;
  JobId id = h.submit(client, spec);
  ASSERT_TRUE(h.wait_state(id, JobState::kRunning));
  int busy = 0;
  for (const NodeState& n : h.server->nodes())
    if (n.has(id)) ++busy;
  EXPECT_EQ(busy, 2);
  ASSERT_TRUE(h.wait_state(id, JobState::kComplete));
  for (const NodeState& n : h.server->nodes()) EXPECT_TRUE(n.idle());
}

// Mom-failover regression: a job requeued by heartbeat failover keeps its
// original queue_rank, so the FIFO policy relaunches it ahead of everything
// submitted after it (requeue is recovery, not a trip to the back of the
// line).
TEST(PbsServer, MomFailoverRequeuePreservesQueueRank) {
  auto tweak = [](ServerConfig& cfg) {
    cfg.heartbeat_interval = sim::msec(500);
    cfg.heartbeat_miss_limit = 2;
    cfg.heartbeat_timeout = sim::msec(300);
  };
  PbsHarness h(2, 1, tweak);
  Client& client = h.make_client();
  JobId victim = h.submit(client, h.quick_job(sim::seconds(60)));
  JobId later = h.submit(client, h.quick_job(sim::seconds(1)));
  ASSERT_TRUE(h.wait_state(victim, JobState::kRunning));
  uint64_t victim_rank = h.server->find_job(victim)->queue_rank;
  uint64_t later_rank = h.server->find_job(later)->queue_rank;
  ASSERT_LT(victim_rank, later_rank);

  sim::HostId exec = h.server->find_job(victim)->exec_host;
  h.net.crash_host(exec);
  ASSERT_TRUE(h.wait_state(victim, JobState::kQueued, sim::seconds(30)));
  EXPECT_EQ(h.server->find_job(victim)->queue_rank, victim_rank)
      << "requeue must not re-rank the job";

  // FIFO honours the preserved rank: the victim relaunches on the surviving
  // node before the later submission gets its turn.
  ASSERT_TRUE(h.wait_state(victim, JobState::kComplete, sim::seconds(200)));
  ASSERT_TRUE(h.wait_state(later, JobState::kComplete, sim::seconds(200)));
  EXPECT_GE(h.server->find_job(later)->start_time,
            h.server->find_job(victim)->start_time);
}

// One array submit expands into array_count independent sub-jobs with
// consecutive ids and indexed names; each runs and completes on its own.
TEST(PbsServer, ArraySubmitExpandsToSubJobs) {
  PbsHarness h;
  Client& client = h.make_client();
  JobSpec spec = h.quick_job(sim::msec(200));
  spec.name = "arr";
  spec.array_count = 3;
  std::optional<SubmitResponse> resp;
  client.qsub(spec, [&](auto r) { resp = r; });
  testutil::run_until(h.sim, [&] { return resp.has_value(); });
  ASSERT_EQ(resp->status, Status::kOk);
  EXPECT_EQ(resp->count, 3u);
  EXPECT_EQ(h.server->submissions(), 3u);
  for (uint32_t i = 0; i < 3; ++i) {
    auto job = h.server->find_job(resp->job_id + i);
    ASSERT_TRUE(job.has_value()) << "sub-job " << i;
    EXPECT_EQ(job->spec.name, "arr[" + std::to_string(i) + "]");
    EXPECT_EQ(job->spec.array_index, static_cast<int32_t>(i));
    EXPECT_TRUE(h.wait_state(job->id, JobState::kComplete, sim::seconds(60)));
  }
}

// End-to-end preemption with the quiet kill: the victim is requeued for an
// urgent job, its killed first incarnation must NOT echo a completion
// report back (that would mark the requeued job cancelled-complete), and it
// finishes cleanly after relaunch -- exactly one completion ever.
TEST(PbsServer, PreemptedJobRelaunchesWithoutStaleCompletion) {
  auto tweak = [](ServerConfig& cfg) {
    cfg.sched.policy = "preempt";
    cfg.sched.exclusive_cluster = false;
  };
  PbsHarness h(2, 1, tweak);
  int victim_completions = 0;
  Client& client = h.make_client();
  JobSpec low = h.quick_job(sim::seconds(10));
  low.nodes = 2;
  low.priority = 0;
  JobId victim = h.submit(client, low);
  h.server->on_job_complete = [&](const Job& job) {
    if (job.id == victim) ++victim_completions;
  };
  ASSERT_TRUE(h.wait_state(victim, JobState::kRunning));

  JobSpec urgent = h.quick_job(sim::seconds(1));
  urgent.nodes = 2;
  urgent.priority = 5;
  JobId high = h.submit(client, urgent);
  ASSERT_TRUE(h.wait_state(high, JobState::kComplete, sim::seconds(60)));
  EXPECT_EQ(h.server->preempt_count(victim), 1u);

  ASSERT_TRUE(h.wait_state(victim, JobState::kComplete, sim::seconds(120)));
  Job done = *h.server->find_job(victim);
  EXPECT_FALSE(done.cancelled) << "stale kill report echoed into the requeue";
  EXPECT_EQ(done.exit_code, 0);
  EXPECT_EQ(victim_completions, 1);
  EXPECT_GE(done.start_time, h.server->find_job(high)->end_time)
      << "the urgent job ran on the freed nodes first";
}

TEST(PbsServer, RestartRecoversQueueAndRequeuesRunning) {
  PbsHarness h;
  Client& client = h.make_client();
  JobId running = h.submit(client, h.quick_job(sim::seconds(120)));
  JobId queued = h.submit(client, h.quick_job(sim::msec(200)));
  ASSERT_TRUE(h.wait_state(running, JobState::kRunning));

  h.net.crash_host(h.head);
  h.sim.run_for(sim::seconds(1));
  h.net.restart_host(h.head);

  // Recovered queue: both jobs exist; the one that was running has been
  // requeued (restart semantics after failover).
  auto r = h.server->find_job(running);
  auto q = h.server->find_job(queued);
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(q.has_value());
  EXPECT_NE(r->state, JobState::kComplete);
  // Everything eventually completes after recovery.
  EXPECT_TRUE(h.wait_state(queued, JobState::kComplete, sim::seconds(400)));
  EXPECT_TRUE(h.wait_state(running, JobState::kComplete, sim::seconds(400)));
}

TEST(PbsServer, DumpAndLoadStateRoundTrip) {
  PbsHarness h;
  Client& client = h.make_client();
  h.submit(client, h.quick_job(sim::seconds(60)));
  h.submit(client, h.quick_job(sim::seconds(60)));

  std::optional<DumpStateResponse> dump;
  client.dump_state([&](auto r) { dump = r; });
  testutil::run_until(h.sim, [&] { return dump.has_value(); });
  ASSERT_EQ(dump->status, Status::kOk);

  // Load into a second, fresh server.
  sim::HostId head2 = h.net.add_host("head2").id();
  pbs::ServerConfig cfg = pbs::server_config_from(sim::fast_calibration());
  cfg.port = 15001;
  cfg.persist = false;
  pbs::Server server2(h.net, head2, cfg);
  server2.load_state_blob(dump->state);
  EXPECT_EQ(server2.jobs().size(), 2u);
  EXPECT_EQ(server2.submissions(), h.server->submissions());
}

TEST(PbsServer, CountInStateAndSubmissions) {
  PbsHarness h;
  Client& client = h.make_client();
  h.submit(client, h.quick_job(sim::seconds(60)));
  h.submit(client, h.quick_job(sim::seconds(60)));
  EXPECT_EQ(h.server->submissions(), 2u);
  testutil::run_until(h.sim, [&] {
    return h.server->count_in_state(JobState::kRunning) == 1;
  });
  EXPECT_EQ(h.server->count_in_state(JobState::kQueued), 1u);
}

}  // namespace
