#include "pbs/scheduler.h"

#include <gtest/gtest.h>

namespace {

using namespace pbs;

Job make_job(JobId id, uint64_t rank, uint32_t nodes = 1,
             JobState state = JobState::kQueued,
             sim::Duration walltime = sim::minutes(10)) {
  Job j;
  j.id = id;
  j.queue_rank = rank;
  j.spec.nodes = nodes;
  j.spec.walltime = walltime;
  j.state = state;
  return j;
}

std::vector<NodeState> make_nodes(int n) {
  std::vector<NodeState> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back({static_cast<sim::HostId>(i), true, kInvalidJob});
  return nodes;
}

TEST(SchedulerFifo, ExclusiveClusterOneJobAtATime) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, true});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1);
  jobs[2] = make_job(2, 2);
  auto decisions = sched.cycle(jobs, make_nodes(2), sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 1u);
  EXPECT_EQ(decisions[0].nodes.size(), 2u) << "whole cluster allocated";
}

TEST(SchedulerFifo, ExclusiveBlocksWhileAnyNodeBusy) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, true});
  std::map<JobId, Job> jobs;
  jobs[2] = make_job(2, 2);
  auto nodes = make_nodes(2);
  nodes[1].running = 1;
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).empty());
}

TEST(SchedulerFifo, FifoOrderByRankNotId) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, true});
  std::map<JobId, Job> jobs;
  jobs[5] = make_job(5, 1);  // earlier rank, higher id
  jobs[2] = make_job(2, 2);
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 5u);
}

TEST(SchedulerFifo, SkipsHeldAndTerminalJobs) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, true});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1, JobState::kHeld);
  jobs[2] = make_job(2, 2, 1, JobState::kComplete);
  jobs[3] = make_job(3, 3);
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 3u);
}

TEST(SchedulerFifo, NonExclusivePacksMultipleJobs) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, false});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 2);
  jobs[2] = make_job(2, 2, 1);
  jobs[3] = make_job(3, 3, 2);  // does not fit after 1+2
  auto decisions = sched.cycle(jobs, make_nodes(4), sim::Time{0});
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].job, 1u);
  EXPECT_EQ(decisions[0].nodes.size(), 2u);
  EXPECT_EQ(decisions[1].job, 2u);
}

TEST(SchedulerFifo, StrictFifoHeadBlocksTail) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, false});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 4);  // needs 4, only 2 free
  jobs[2] = make_job(2, 2, 1);  // would fit, but FIFO blocks
  EXPECT_TRUE(sched.cycle(jobs, make_nodes(2), sim::Time{0}).empty());
}

TEST(SchedulerFifo, DownNodesNotAllocated) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, false});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 2);
  auto nodes = make_nodes(2);
  nodes[0].up = false;
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).empty());
  jobs[1].spec.nodes = 1;
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].nodes[0], 1u) << "only the up node";
}

TEST(SchedulerBackfill, SmallJobFillsHole) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifoBackfill, false});
  std::map<JobId, Job> jobs;
  // Running job holds 2 of 4 nodes for another ~60s.
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));  // blocked
  // Short small job fits before the blocked job's shadow time.
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::seconds(30));
  auto nodes = make_nodes(4);
  nodes[0].running = 1;
  nodes[1].running = 1;
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 3u);
}

TEST(SchedulerBackfill, LongJobDoesNotDelayReservation) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifoBackfill, false});
  std::map<JobId, Job> jobs;
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));
  // Long job (10 min) on 1 node would outlive the shadow and the blocked
  // job needs all 4 nodes: must NOT backfill.
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::minutes(10));
  auto nodes = make_nodes(4);
  nodes[0].running = 1;
  nodes[1].running = 1;
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).empty());
}

TEST(SchedulerBackfill, LongJobAllowedOnSpareNodes) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifoBackfill, false});
  std::map<JobId, Job> jobs;
  // 5 nodes; a 2-node job runs, so 3 are free. The head job needs 4 and
  // blocks. At the shadow instant 5 nodes free up, the head takes 4,
  // leaving 1 spare -- a long 1-node job may run on it indefinitely.
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::hours(1));
  auto nodes = make_nodes(5);
  nodes[0].running = 1;
  nodes[1].running = 1;
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0});
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 3u) << "spare capacity at shadow time";
}

TEST(SchedulerDeterminism, SameInputsSameDecisions) {
  // The paper's requirement: identical state at every head must produce
  // identical launch decisions.
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifoBackfill, false});
  std::map<JobId, Job> jobs;
  for (JobId id = 1; id <= 20; ++id)
    jobs[id] = make_job(id, id, static_cast<uint32_t>(1 + id % 3));
  auto nodes = make_nodes(6);
  auto d1 = sched.cycle(jobs, nodes, sim::Time{12345});
  auto d2 = sched.cycle(jobs, nodes, sim::Time{12345});
  ASSERT_EQ(d1.size(), d2.size());
  for (size_t i = 0; i < d1.size(); ++i) {
    EXPECT_EQ(d1[i].job, d2[i].job);
    EXPECT_EQ(d1[i].nodes, d2[i].nodes);
  }
}

TEST(SchedulerEdge, NoJobsNoDecisions) {
  Scheduler sched(SchedulerConfig{});
  EXPECT_TRUE(sched.cycle({}, make_nodes(2), sim::Time{0}).empty());
}

TEST(SchedulerEdge, NoNodesNoDecisions) {
  Scheduler sched(SchedulerConfig{SchedPolicy::kFifo, false});
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1);
  EXPECT_TRUE(sched.cycle(jobs, {}, sim::Time{0}).empty());
}

}  // namespace
