#include "pbs/scheduler.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace {

using namespace pbs;

Job make_job(JobId id, uint64_t rank, uint32_t nodes = 1,
             JobState state = JobState::kQueued,
             sim::Duration walltime = sim::minutes(10)) {
  Job j;
  j.id = id;
  j.queue_rank = rank;
  j.spec.nodes = nodes;
  j.spec.walltime = walltime;
  j.state = state;
  return j;
}

std::vector<NodeState> make_nodes(int n) {
  std::vector<NodeState> nodes;
  for (int i = 0; i < n; ++i) {
    NodeState node;
    node.host = static_cast<sim::HostId>(i);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

SchedulerConfig cfg(const std::string& policy, bool exclusive,
                    const std::string& selector = "firstfit") {
  SchedulerConfig c;
  c.policy = policy;
  c.selector = selector;
  c.exclusive_cluster = exclusive;
  return c;
}

TEST(SchedulerFifo, ExclusiveClusterOneJobAtATime) {
  Scheduler sched(cfg("fifo", true));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1);
  jobs[2] = make_job(2, 2);
  auto decisions = sched.cycle(jobs, make_nodes(2), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 1u);
  EXPECT_EQ(decisions[0].nodes.size(), 2u) << "whole cluster allocated";
}

TEST(SchedulerFifo, ExclusiveBlocksWhileAnyNodeBusy) {
  Scheduler sched(cfg("fifo", true));
  std::map<JobId, Job> jobs;
  jobs[2] = make_job(2, 2);
  auto nodes = make_nodes(2);
  nodes[1].assign(1);
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).launches.empty());
}

TEST(SchedulerFifo, FifoOrderByRankNotId) {
  Scheduler sched(cfg("fifo", true));
  std::map<JobId, Job> jobs;
  jobs[5] = make_job(5, 1);  // earlier rank, higher id
  jobs[2] = make_job(2, 2);
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 5u);
}

TEST(SchedulerFifo, SkipsHeldAndTerminalJobs) {
  Scheduler sched(cfg("fifo", true));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1, JobState::kHeld);
  jobs[2] = make_job(2, 2, 1, JobState::kComplete);
  jobs[3] = make_job(3, 3);
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 3u);
}

TEST(SchedulerFifo, NonExclusivePacksMultipleJobs) {
  Scheduler sched(cfg("fifo", false));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 2);
  jobs[2] = make_job(2, 2, 1);
  jobs[3] = make_job(3, 3, 2);  // does not fit after 1+2
  auto decisions = sched.cycle(jobs, make_nodes(4), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_EQ(decisions[0].job, 1u);
  EXPECT_EQ(decisions[0].nodes.size(), 2u);
  EXPECT_EQ(decisions[1].job, 2u);
}

TEST(SchedulerFifo, StrictFifoHeadBlocksTail) {
  Scheduler sched(cfg("fifo", false));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 4);  // needs 4, only 2 free
  jobs[2] = make_job(2, 2, 1);  // would fit, but FIFO blocks
  EXPECT_TRUE(sched.cycle(jobs, make_nodes(2), sim::Time{0}).launches.empty());
}

TEST(SchedulerFifo, DownNodesNotAllocated) {
  Scheduler sched(cfg("fifo", false));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 2);
  auto nodes = make_nodes(2);
  nodes[0].up = false;
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).launches.empty());
  jobs[1].spec.nodes = 1;
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].nodes[0], 1u) << "only the up node";
}

TEST(SchedulerBackfill, SmallJobFillsHole) {
  Scheduler sched(cfg("backfill", false));
  std::map<JobId, Job> jobs;
  // Running job holds 2 of 4 nodes for another ~60s.
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));  // blocked
  // Short small job fits before the blocked job's shadow time.
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::seconds(30));
  auto nodes = make_nodes(4);
  nodes[0].assign(1);
  nodes[1].assign(1);
  auto result = sched.cycle(jobs, nodes, sim::Time{0});
  ASSERT_EQ(result.launches.size(), 1u);
  EXPECT_EQ(result.launches[0].job, 3u);
  EXPECT_EQ(result.backfilled, 1u);
}

TEST(SchedulerBackfill, LongJobDoesNotDelayReservation) {
  Scheduler sched(cfg("backfill", false));
  std::map<JobId, Job> jobs;
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));
  // Long job (10 min) on 1 node would outlive the shadow and the blocked
  // job needs all 4 nodes: must NOT backfill.
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::minutes(10));
  auto nodes = make_nodes(4);
  nodes[0].assign(1);
  nodes[1].assign(1);
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).launches.empty());
}

TEST(SchedulerBackfill, LongJobAllowedOnSpareNodes) {
  Scheduler sched(cfg("backfill", false));
  std::map<JobId, Job> jobs;
  // 5 nodes; a 2-node job runs, so 3 are free. The head job needs 4 and
  // blocks. At the shadow instant 5 nodes free up, the head takes 4,
  // leaving 1 spare -- a long 1-node job may run on it indefinitely.
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::hours(1));
  auto nodes = make_nodes(5);
  nodes[0].assign(1);
  nodes[1].assign(1);
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 3u) << "spare capacity at shadow time";
}

// Satellite: a running job past its walltime estimate must have its release
// clamped to `now` -- a shadow time in the past would let backfill delay the
// blocked job indefinitely.
TEST(SchedulerBackfill, OverrunningJobReleaseClampedToNow) {
  Scheduler sched(cfg("backfill", false));
  std::map<JobId, Job> jobs;
  // Started at t=0 with a 60s estimate; it is now t=300s and it still runs.
  Job running = make_job(1, 1, 2, JobState::kRunning, sim::seconds(60));
  running.start_time = sim::Time{0};
  jobs[1] = running;
  jobs[2] = make_job(2, 2, 4, JobState::kQueued, sim::minutes(10));
  // 90s backfill candidate: with the clamp the shadow is `now` and nothing
  // may run in front of the blocked job (no spare at shadow either).
  jobs[3] = make_job(3, 3, 1, JobState::kQueued, sim::seconds(90));
  auto nodes = make_nodes(4);
  nodes[0].assign(1);
  nodes[1].assign(1);
  sim::Time now = sim::Time{sim::minutes(5).us};
  EXPECT_TRUE(sched.cycle(jobs, nodes, now).launches.empty())
      << "an overrunning job must not push the shadow into the past";
}

// Satellite property test: whatever the queue shape, EASY backfill never
// admits a job that delays the blocked head's shadow start.
TEST(SchedulerBackfill, BackfillNeverDelaysShadowProperty) {
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    int node_count = 3 + static_cast<int>(rng() % 6);  // 3..8
    auto nodes = make_nodes(node_count);
    std::map<JobId, Job> jobs;
    JobId id = 1;
    uint64_t rank = 1;
    // A few running jobs occupying a prefix of the cluster.
    int busy = static_cast<int>(rng() % node_count);
    int placed = 0;
    while (placed < busy) {
      uint32_t width = 1 + static_cast<uint32_t>(rng() % 2);
      if (placed + static_cast<int>(width) > busy) width = 1;
      Job r = make_job(id, rank, width, JobState::kRunning,
                       sim::seconds(30 + static_cast<int64_t>(rng() % 600)));
      r.start_time = sim::Time{0};
      for (uint32_t k = 0; k < width; ++k)
        nodes[static_cast<size_t>(placed + static_cast<int>(k))].assign(id);
      jobs[id] = r;
      ++id, ++rank, placed += static_cast<int>(width);
    }
    // Queued jobs; make the head wide so it blocks often.
    uint32_t head_width =
        static_cast<uint32_t>(node_count - (rng() % 2 == 0 ? 0 : 1));
    jobs[id] = make_job(id, rank++, head_width, JobState::kQueued,
                        sim::minutes(10));
    JobId blocked_id = id++;
    for (int q = 0; q < 6; ++q) {
      jobs[id] = make_job(
          id, rank++, 1 + static_cast<uint32_t>(rng() % 3), JobState::kQueued,
          sim::seconds(10 + static_cast<int64_t>(rng() % 900)));
      ++id;
    }

    sim::Time now{0};
    // Shadow: earliest instant the blocked head could start, from walltime
    // estimates, BEFORE any backfill decisions.
    size_t free_now = 0;
    for (const auto& n : nodes) free_now += n.free_slots();
    std::vector<std::pair<sim::Time, uint32_t>> releases;
    for (const auto& [jid, job] : jobs) {
      (void)jid;
      if (job.state != JobState::kRunning) continue;
      sim::Time release = job.start_time + job.spec.walltime;
      if (release < now) release = now;
      releases.emplace_back(release, job.spec.nodes);
    }
    std::sort(releases.begin(), releases.end());
    size_t avail = free_now;
    sim::Time shadow = sim::kTimeInfinity;
    for (const auto& [when, cnt] : releases) {
      avail += cnt;
      if (avail >= jobs[blocked_id].spec.nodes) {
        shadow = when;
        break;
      }
    }
    size_t spare =
        avail >= jobs[blocked_id].spec.nodes
            ? avail - jobs[blocked_id].spec.nodes
            : 0;

    Scheduler sched(cfg("backfill", false));
    auto result = sched.cycle(jobs, nodes, now);
    size_t spare_used = 0;
    for (const auto& d : result.launches) {
      if (d.job == blocked_id) continue;  // head launched: nothing blocked
      const Job& j = jobs[d.job];
      bool before_shadow = now + j.spec.walltime <= shadow;
      if (!before_shadow) spare_used += j.spec.nodes;
    }
    EXPECT_LE(spare_used, spare)
        << "trial " << trial
        << ": backfill past the shadow must fit in the blocked job's spare";
  }
}

// Satellite: JobSpec::priority must decide launch order under the priority
// policy (higher first), with queue_rank then id breaking ties.
TEST(SchedulerPriority, HighPrioritySubmittedLaterLaunchesFirst) {
  Scheduler sched(cfg("priority", false));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1);  // priority 0, earlier
  jobs[2] = make_job(2, 2);
  jobs[2].spec.priority = 10;  // later but urgent
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 2u) << "priority 10 beats priority 0";
}

TEST(SchedulerPriority, EqualPriorityFallsBackToFifo) {
  Scheduler sched(cfg("priority", false));
  std::map<JobId, Job> jobs;
  jobs[7] = make_job(7, 1);
  jobs[3] = make_job(3, 2);
  jobs[7].spec.priority = 5;
  jobs[3].spec.priority = 5;
  auto decisions = sched.cycle(jobs, make_nodes(1), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 7u) << "rank breaks the priority tie";
}

TEST(SchedulerPriority, AgingLiftsStarvedJobs) {
  SchedulerConfig c = cfg("priority", false);
  c.priority_aging = sim::seconds(10);  // +1 priority per 10s waited
  Scheduler sched(c);
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1);  // priority 0, submitted at t=0
  jobs[1].submit_time = sim::Time{0};
  jobs[2] = make_job(2, 2);
  jobs[2].spec.priority = 5;
  jobs[2].submit_time = sim::Time{sim::seconds(60).us};
  // At t=60s job 1 has aged +6: effective 6 > 5.
  auto decisions =
      sched.cycle(jobs, make_nodes(1), sim::Time{sim::seconds(60).us})
          .launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].job, 1u) << "aging outran the static priority";
}

TEST(SchedulerPreempt, LowPriorityVictimRequeuedForUrgentJob) {
  Scheduler sched(cfg("preempt", false));
  std::map<JobId, Job> jobs;
  // Both nodes busy with priority-0 work; an urgent 2-node job arrives.
  for (JobId v = 1; v <= 2; ++v) {
    Job r = make_job(v, v, 1, JobState::kRunning);
    r.start_time = sim::Time{0};
    jobs[v] = r;
  }
  jobs[3] = make_job(3, 3, 2);
  jobs[3].spec.priority = 10;
  auto nodes = make_nodes(2);
  nodes[0].assign(1);
  nodes[1].assign(2);
  auto result = sched.cycle(jobs, nodes, sim::Time{0});
  EXPECT_TRUE(result.launches.empty()) << "launch happens after the requeue";
  ASSERT_EQ(result.preemptions.size(), 2u);
  // Cheapest victims first: equal priority, so youngest (highest rank).
  EXPECT_EQ(result.preemptions[0], 2u);
  EXPECT_EQ(result.preemptions[1], 1u);
}

TEST(SchedulerPreempt, AllOrNothingWhenGainInsufficient) {
  Scheduler sched(cfg("preempt", false));
  std::map<JobId, Job> jobs;
  // One preemptible job on 1 node, but the urgent job needs 3; the third
  // node is down, so even preempting everything cannot unblock it.
  Job r = make_job(1, 1, 1, JobState::kRunning);
  jobs[1] = r;
  jobs[2] = make_job(2, 2, 3);
  jobs[2].spec.priority = 10;
  auto nodes = make_nodes(3);
  nodes[0].assign(1);
  nodes[2].up = false;
  auto result = sched.cycle(jobs, nodes, sim::Time{0});
  EXPECT_TRUE(result.preemptions.empty())
      << "partial preemption wastes work without unblocking";
}

TEST(SchedulerPreempt, EqualPriorityNeverPreempted) {
  Scheduler sched(cfg("preempt", false));
  std::map<JobId, Job> jobs;
  Job r = make_job(1, 1, 1, JobState::kRunning);
  r.spec.priority = 5;
  jobs[1] = r;
  jobs[2] = make_job(2, 2, 1);
  jobs[2].spec.priority = 5;
  auto nodes = make_nodes(1);
  nodes[0].assign(1);
  auto result = sched.cycle(jobs, nodes, sim::Time{0});
  EXPECT_TRUE(result.preemptions.empty()) << "strictly-lower only";
}

TEST(SchedulerPreempt, ExclusiveClusterPreemptsWholeOccupancy) {
  Scheduler sched(cfg("preempt", true));
  std::map<JobId, Job> jobs;
  Job r = make_job(1, 1, 2, JobState::kRunning);
  jobs[1] = r;
  jobs[2] = make_job(2, 2, 1);
  jobs[2].spec.priority = 3;
  auto nodes = make_nodes(2);
  nodes[0].assign(1);
  nodes[1].assign(1);
  auto result = sched.cycle(jobs, nodes, sim::Time{0});
  EXPECT_TRUE(result.launches.empty());
  ASSERT_EQ(result.preemptions.size(), 1u);
  EXPECT_EQ(result.preemptions[0], 1u);
}

TEST(SchedulerSelector, ReplicaSetsAreDisjoint) {
  const NodeSelector* sel = find_node_selector("replica");
  ASSERT_NE(sel, nullptr);
  auto nodes = make_nodes(6);
  FreePool pool = make_free_pool(nodes);
  JobSpec spec;
  spec.nodes = 2;
  spec.replicas = 3;
  auto sets = sel->select(pool, spec, true);
  ASSERT_EQ(sets.size(), 3u);
  std::set<sim::HostId> seen;
  for (const auto& set : sets) {
    ASSERT_EQ(set.size(), 2u);
    for (sim::HostId h : set)
      EXPECT_TRUE(seen.insert(h).second) << "host " << h << " reused";
  }
}

TEST(SchedulerSelector, ReplicaCarvesExtrasFromBack) {
  const NodeSelector* sel = find_node_selector("replica");
  ASSERT_NE(sel, nullptr);
  auto nodes = make_nodes(6);
  FreePool pool = make_free_pool(nodes);
  JobSpec spec;
  spec.nodes = 1;
  spec.replicas = 2;
  auto sets = sel->select(pool, spec, true);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0][0], 0u) << "primary from the front";
  EXPECT_EQ(sets[1][0], 5u) << "replica from the back";
  // The contiguous middle stays free for backfill.
  for (size_t i = 1; i <= 4; ++i) EXPECT_EQ(pool[i].free, 1u);
}

TEST(SchedulerSelector, BackfillPacksAroundReplicas) {
  // End-to-end through the backfill policy: a replicated running job placed
  // front+back must leave the middle usable.
  Scheduler sched(cfg("backfill", false, "replica"));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 2);
  jobs[1].spec.replicas = 2;
  jobs[2] = make_job(2, 2, 2);
  auto decisions = sched.cycle(jobs, make_nodes(6), sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 2u);
  ASSERT_EQ(decisions[0].replica_sets.size(), 2u);
  EXPECT_EQ(decisions[0].replica_sets[0],
            (std::vector<sim::HostId>{0, 1}));
  EXPECT_EQ(decisions[0].replica_sets[1],
            (std::vector<sim::HostId>{4, 5}));
  EXPECT_EQ(decisions[1].nodes, (std::vector<sim::HostId>{2, 3}));
}

TEST(SchedulerHetero, NodeTypeRequestFiltersPlacement) {
  Scheduler sched(cfg("fifo", false));
  auto nodes = make_nodes(3);
  nodes[1].attrs.type = "gpu";
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1);
  jobs[1].spec.node_type = "gpu";
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].nodes, (std::vector<sim::HostId>{1}));
}

TEST(SchedulerHetero, FeatureRequestsAreConjunctive) {
  Scheduler sched(cfg("fifo", false));
  auto nodes = make_nodes(3);
  nodes[0].attrs.features = {"gpu"};
  nodes[2].attrs.features = {"gpu", "bigmem"};
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1);
  jobs[1].spec.features = {"gpu", "bigmem"};
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0].nodes, (std::vector<sim::HostId>{2}));
  // No node has both features + a missing one: nothing launches.
  jobs[1].spec.features = {"gpu", "bigmem", "nvme"};
  EXPECT_TRUE(sched.cycle(jobs, nodes, sim::Time{0}).launches.empty());
}

TEST(SchedulerHetero, MultiSlotNodesCoScheduleJobs) {
  Scheduler sched(cfg("fifo", false));
  auto nodes = make_nodes(1);
  nodes[0].attrs.slots = 3;
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1);
  jobs[2] = make_job(2, 2, 1);
  jobs[3] = make_job(3, 3, 1);
  jobs[4] = make_job(4, 4, 1);
  auto decisions = sched.cycle(jobs, nodes, sim::Time{0}).launches;
  ASSERT_EQ(decisions.size(), 3u) << "three slots, three jobs; fourth waits";
  for (const auto& d : decisions)
    EXPECT_EQ(d.nodes, (std::vector<sim::HostId>{0}));
}

TEST(SchedulerDeterminism, SameInputsSameDecisions) {
  // The paper's requirement: identical state at every head must produce
  // identical launch decisions -- for every registered policy.
  for (const std::string& policy : sched_policy_names()) {
    for (const std::string& selector : node_selector_names()) {
      Scheduler sched(cfg(policy, false, selector));
      std::map<JobId, Job> jobs;
      for (JobId id = 1; id <= 20; ++id) {
        jobs[id] = make_job(id, id, static_cast<uint32_t>(1 + id % 3));
        jobs[id].spec.priority = static_cast<int32_t>(id % 4);
      }
      auto nodes = make_nodes(6);
      auto d1 = sched.cycle(jobs, nodes, sim::Time{12345});
      auto d2 = sched.cycle(jobs, nodes, sim::Time{12345});
      ASSERT_EQ(d1.launches.size(), d2.launches.size());
      for (size_t i = 0; i < d1.launches.size(); ++i) {
        EXPECT_EQ(d1.launches[i].job, d2.launches[i].job);
        EXPECT_EQ(d1.launches[i].nodes, d2.launches[i].nodes);
      }
      EXPECT_EQ(d1.preemptions, d2.preemptions);
    }
  }
}

TEST(SchedulerRegistry, BuiltinsPresent) {
  for (const char* p : {"fifo", "backfill", "priority", "preempt"})
    EXPECT_NE(find_sched_policy(p), nullptr) << p;
  for (const char* s : {"firstfit", "replica"})
    EXPECT_NE(find_node_selector(s), nullptr) << s;
  EXPECT_EQ(find_sched_policy("nope"), nullptr);
  EXPECT_EQ(find_node_selector("nope"), nullptr);
}

TEST(SchedulerRegistry, CustomPolicyPluggable) {
  class NullPolicy : public SchedPolicy {
   public:
    std::string_view name() const override { return "null-test"; }
    SchedDecisions cycle(const SchedContext&) const override { return {}; }
  };
  if (find_sched_policy("null-test") == nullptr)
    register_sched_policy(std::make_unique<NullPolicy>());
  Scheduler sched(cfg("null-test", false));
  EXPECT_EQ(sched.policy().name(), "null-test");
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1);
  EXPECT_TRUE(sched.cycle(jobs, make_nodes(2), sim::Time{0}).launches.empty());
}

TEST(SchedulerRegistry, UnknownNamesFallBackToDefaults) {
  Scheduler sched(cfg("no-such-policy", true, "no-such-selector"));
  EXPECT_EQ(sched.policy().name(), "fifo");
  EXPECT_EQ(sched.selector().name(), "firstfit");
}

TEST(SchedulerEdge, NoJobsNoDecisions) {
  Scheduler sched(SchedulerConfig{});
  EXPECT_TRUE(
      sched.cycle({}, make_nodes(2), sim::Time{0}).launches.empty());
}

TEST(SchedulerEdge, NoNodesNoDecisions) {
  Scheduler sched(cfg("fifo", false));
  std::map<JobId, Job> jobs;
  jobs[1] = make_job(1, 1, 1);
  EXPECT_TRUE(sched.cycle(jobs, {}, sim::Time{0}).launches.empty());
}

}  // namespace
