// Harness for PBS-level tests: one head running a server, M compute nodes
// running moms, a login node with clients. Plain TORQUE, no JOSHUA.
#pragma once

#include <memory>

#include "pbs/client.h"
#include "pbs/mom.h"
#include "pbs/server.h"
#include "sim/calibration.h"
#include "testutil.h"

namespace pbstest {

class PbsHarness {
 public:
  explicit PbsHarness(int computes = 2, uint64_t seed = 1,
                      std::function<void(pbs::ServerConfig&)> tweak_server = nullptr,
                      std::function<void(pbs::MomConfig&)> tweak_mom = nullptr)
      : sim(seed), net(sim, sim::fast_calibration().network) {
    head = net.add_host("head").id();
    for (int i = 0; i < computes; ++i)
      compute.push_back(net.add_host("node" + std::to_string(i)).id());
    login = net.add_host("login").id();

    pbs::ServerConfig cfg = pbs::server_config_from(sim::fast_calibration());
    cfg.port = 15001;
    cfg.sched_interval = sim::msec(100);
    for (sim::HostId h : compute) cfg.moms.push_back({h, 15002});
    if (tweak_server) tweak_server(cfg);
    server = std::make_unique<pbs::Server>(net, head, cfg);

    for (sim::HostId h : compute) {
      pbs::MomConfig mcfg = pbs::mom_config_from(sim::fast_calibration());
      mcfg.port = 15002;
      mcfg.server_port = 15001;
      mcfg.report_retry = sim::msec(200);
      if (tweak_mom) tweak_mom(mcfg);
      moms.push_back(std::make_unique<pbs::Mom>(net, h, mcfg));
    }
  }

  pbs::Client& make_client() {
    pbs::ClientConfig cfg = pbs::client_config_from(
        sim::fast_calibration(), sim::Endpoint{head, 15001});
    clients.push_back(
        std::make_unique<pbs::Client>(net, login, next_port++, cfg));
    return *clients.back();
  }

  /// Submit synchronously-ish: returns the job id once the response lands.
  pbs::JobId submit(pbs::Client& client, pbs::JobSpec spec) {
    pbs::JobId id = pbs::kInvalidJob;
    bool done = false;
    client.qsub(std::move(spec), [&](std::optional<pbs::SubmitResponse> r) {
      done = true;
      if (r && r->status == pbs::Status::kOk) id = r->job_id;
    });
    testutil::run_until(sim, [&] { return done; });
    return id;
  }

  bool wait_state(pbs::JobId id, pbs::JobState state,
                  sim::Duration deadline = sim::seconds(60)) {
    return testutil::run_until(
        sim,
        [&] {
          auto job = server->find_job(id);
          return job.has_value() && job->state == state;
        },
        deadline);
  }

  pbs::JobSpec quick_job(sim::Duration run_time = sim::msec(500)) {
    pbs::JobSpec spec;
    spec.name = "t";
    spec.run_time = run_time;
    return spec;
  }

  sim::Simulation sim;
  sim::Network net;
  sim::HostId head;
  std::vector<sim::HostId> compute;
  sim::HostId login;
  std::unique_ptr<pbs::Server> server;
  std::vector<std::unique_ptr<pbs::Mom>> moms;
  std::vector<std::unique_ptr<pbs::Client>> clients;
  sim::Port next_port = 20000;
};

}  // namespace pbstest
