#include "ha/availability.h"

#include <gtest/gtest.h>

namespace {

using namespace ha;

TEST(Availability, Equation1NodeAvailability) {
  // MTTF 5000 h, MTTR 72 h -> A = 5000/5072 = 0.98580...
  EXPECT_NEAR(node_availability(5000, 72), 0.985804, 1e-6);
  EXPECT_DOUBLE_EQ(node_availability(100, 0), 1.0);
  EXPECT_THROW(node_availability(0, 72), std::invalid_argument);
  EXPECT_THROW(node_availability(-1, 72), std::invalid_argument);
}

TEST(Availability, Equation2ParallelRedundancy) {
  double a = 0.9;
  EXPECT_DOUBLE_EQ(service_availability(a, 1), 0.9);
  EXPECT_DOUBLE_EQ(service_availability(a, 2), 0.99);
  EXPECT_DOUBLE_EQ(service_availability(a, 3), 0.999);
  EXPECT_THROW(service_availability(a, 0), std::invalid_argument);
  EXPECT_THROW(service_availability(1.5, 2), std::invalid_argument);
}

TEST(Availability, Equation3Downtime) {
  // 1 - A = 1e-4 -> 8760 h * 1e-4 = 0.876 h = 3153.6 s
  EXPECT_NEAR(downtime_seconds_per_year(1.0 - 1e-4), 3153.6, 0.01);
  EXPECT_DOUBLE_EQ(downtime_seconds_per_year(1.0), 0.0);
}

// The paper's Figure 12, row by row.
TEST(Availability, Figure12RowsMatchPaper) {
  auto rows = figure12_table(4, 5000.0, 72.0);
  ASSERT_EQ(rows.size(), 4u);

  EXPECT_EQ(rows[0].nodes, 1);
  EXPECT_EQ(rows[0].availability_str, "98.6%");
  EXPECT_EQ(rows[0].nines, 1);
  EXPECT_EQ(rows[0].downtime_str, "5d 4h 21min");

  EXPECT_EQ(rows[1].availability_str, "99.98%");
  EXPECT_EQ(rows[1].nines, 3);
  EXPECT_EQ(rows[1].downtime_str, "1h 45min");

  EXPECT_EQ(rows[2].availability_str, "99.9997%");
  EXPECT_EQ(rows[2].nines, 5);
  EXPECT_EQ(rows[2].downtime_str, "1min 30s");

  EXPECT_EQ(rows[3].availability_str, "99.999996%");
  EXPECT_EQ(rows[3].nines, 7);
  EXPECT_EQ(rows[3].downtime_str, "1s");
}

TEST(Availability, RenderFigure12ContainsRows) {
  std::string table = render_figure12(figure12_table());
  EXPECT_NE(table.find("98.6%"), std::string::npos);
  EXPECT_NE(table.find("5d 4h 21min"), std::string::npos);
  EXPECT_NE(table.find("99.999996%"), std::string::npos);
  EXPECT_NE(table.find("1s"), std::string::npos);
}

TEST(Availability, CorrelatedFailuresCapRedundancyGains) {
  double a = node_availability(5000, 72);
  double independent = service_availability(a, 4);
  double correlated = service_availability_correlated(a, 4, 0.1);
  EXPECT_LT(correlated, independent)
      << "shared-cause outages are not reduced by redundancy";
  // beta = 0 reduces to the independent model.
  EXPECT_NEAR(service_availability_correlated(a, 4, 0.0), independent, 1e-12);
  // beta = 1: redundancy does not help at all beyond one node.
  EXPECT_NEAR(service_availability_correlated(a, 4, 1.0), a, 1e-12);
  EXPECT_THROW(service_availability_correlated(a, 4, 2.0),
               std::invalid_argument);
}

// Hand-computed spot values (worked out on paper, not with the code under
// test): the longevity harness leans on these functions for its analytic
// availability band, so they get exact-value coverage beyond the Figure 12
// strings.
TEST(Availability, HandComputedNodeAvailability) {
  // MTTF 2 h, MTTR 5 min = 1/12 h: A = 2 / (2 + 1/12) = 24/25 = 0.96.
  EXPECT_NEAR(node_availability(2.0, 1.0 / 12.0), 0.96, 1e-12);
  // MTTF 9 h, MTTR 1 h: A = 0.9 exactly.
  EXPECT_DOUBLE_EQ(node_availability(9.0, 1.0), 0.9);
  // MTTF 1 h, MTTR 3 h (repair dominates): A = 0.25 exactly.
  EXPECT_DOUBLE_EQ(node_availability(1.0, 3.0), 0.25);
}

TEST(Availability, HandComputedServiceAvailability) {
  // A = 0.96, n = 3: 1 - 0.04^3 = 1 - 6.4e-5 = 0.999936.
  EXPECT_NEAR(service_availability(0.96, 3), 0.999936, 1e-12);
  // A = 0.75, n = 2: 1 - 0.0625 = 0.9375 exactly.
  EXPECT_DOUBLE_EQ(service_availability(0.75, 2), 0.9375);
  // n = 1 is the identity.
  EXPECT_DOUBLE_EQ(service_availability(0.123, 1), 0.123);
}

TEST(Availability, HandComputedDowntime) {
  // A_service = 0.999936 -> 8760 h * 6.4e-5 = 0.56064 h = 2018.304 s.
  EXPECT_NEAR(downtime_seconds_per_year(0.999936), 2018.304, 1e-6);
  // A_service = 0.5 -> half of 8760 h = 4380 h = 15,768,000 s.
  EXPECT_DOUBLE_EQ(downtime_seconds_per_year(0.5), 15768000.0);
}

TEST(Availability, HandComputedCorrelated) {
  // A = 0.96, n = 2, beta = 0.25:
  //   common mode: 1 - 0.25*0.04               = 0.99
  //   independent: 1 - (0.75*0.04)^2 = 1 - 9e-4 = 0.9991
  //   product                                   = 0.98910900
  EXPECT_NEAR(service_availability_correlated(0.96, 2, 0.25), 0.989109,
              1e-12);
  // A = 0.9, n = 1, any beta: (1-b*0.1)*(1-(1-b)*0.1) -- at b=0.5 both
  // factors are 0.95, so A = 0.9025.
  EXPECT_NEAR(service_availability_correlated(0.9, 1, 0.5), 0.9025, 1e-12);
}

TEST(Availability, MoreNodesMonotonicallyBetter) {
  double prev = 0.0;
  for (int n = 1; n <= 8; ++n) {
    auto row = figure12_row(n, 5000, 72);
    EXPECT_GT(row.availability, prev);
    prev = row.availability;
  }
}

// -- compute-plane extension --------------------------------------------------

TEST(ComputeAvailability, ReplicationDegeneratesToBareNodeAtR1) {
  // r = 1 must reproduce the paper's un-replicated compute plane exactly:
  // job availability IS the node availability (Equation (2) with n = 1).
  for (double a : {0.5, 0.9, 0.99, 0.9999}) {
    EXPECT_DOUBLE_EQ(job_availability(a, 1), a);
  }
}

TEST(ComputeAvailability, HandComputedReplication) {
  // A_c = 0.99, r = 2: 1 - 0.01^2 = 0.9999.
  EXPECT_NEAR(job_availability(0.99, 2), 0.9999, 1e-12);
  // A_c = 0.9, r = 3: 1 - 0.1^3 = 0.999.
  EXPECT_NEAR(job_availability(0.9, 3), 0.999, 1e-12);
}

TEST(ComputeAvailability, HandComputedFailoverLatency) {
  // 5 s heartbeat, 3 misses, 45 s requeue/redispatch: 60 s = 1/60 h.
  EXPECT_NEAR(failover_latency_hours(5.0, 3, 45.0), 1.0 / 60.0, 1e-15);
  // Zero-cost detector degenerates to zero repair time.
  EXPECT_DOUBLE_EQ(failover_latency_hours(0.0, 1, 0.0), 0.0);
}

TEST(ComputeAvailability, FailoverShrinksEffectiveRepairTime) {
  // Paper's node parameters: MTTF 5000 h, MTTR 72 h. Without failover the
  // job sees the full 72 h repair; with a 60 s failover it sees 1/60 h.
  double without = node_availability(5000, 72);
  double with = compute_availability_failover(5000, 1.0 / 60.0);
  // Hand-computed: 5000 / (5000 + 1/60) = 300000/300001.
  EXPECT_NEAR(with, 300000.0 / 300001.0, 1e-15);
  EXPECT_GT(with, without);
  // Failover latency equal to the node MTTR degenerates to Equation (1).
  EXPECT_DOUBLE_EQ(compute_availability_failover(5000, 72),
                   node_availability(5000, 72));
}

TEST(ComputeAvailability, HandComputedCombined) {
  // n = 1, r = 1 is the unprotected series system A_head * A_compute.
  EXPECT_DOUBLE_EQ(combined_availability(0.9, 1, 0.8, 1), 0.72);
  // n = 2 heads at 0.9 (1 - 0.01 = 0.99), r = 2 computes at 0.8
  // (1 - 0.04 = 0.96): 0.99 * 0.96 = 0.9504.
  EXPECT_NEAR(combined_availability(0.9, 2, 0.8, 2), 0.9504, 1e-12);
  // The combined model can never beat either plane alone.
  EXPECT_LE(combined_availability(0.99, 3, 0.95, 2),
            service_availability(0.99, 3));
  EXPECT_LE(combined_availability(0.99, 3, 0.95, 2),
            job_availability(0.95, 2));
}

TEST(ComputeAvailability, RejectsBadArguments) {
  EXPECT_THROW(job_availability(0.9, 0), std::invalid_argument);
  EXPECT_THROW(compute_availability_failover(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(compute_availability_failover(100.0, -1.0),
               std::invalid_argument);
  EXPECT_THROW(failover_latency_hours(5.0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(failover_latency_hours(-1.0, 1, 1.0), std::invalid_argument);
}

}  // namespace
