#include "ha/availability.h"

#include <gtest/gtest.h>

namespace {

using namespace ha;

TEST(Availability, Equation1NodeAvailability) {
  // MTTF 5000 h, MTTR 72 h -> A = 5000/5072 = 0.98580...
  EXPECT_NEAR(node_availability(5000, 72), 0.985804, 1e-6);
  EXPECT_DOUBLE_EQ(node_availability(100, 0), 1.0);
  EXPECT_THROW(node_availability(0, 72), std::invalid_argument);
  EXPECT_THROW(node_availability(-1, 72), std::invalid_argument);
}

TEST(Availability, Equation2ParallelRedundancy) {
  double a = 0.9;
  EXPECT_DOUBLE_EQ(service_availability(a, 1), 0.9);
  EXPECT_DOUBLE_EQ(service_availability(a, 2), 0.99);
  EXPECT_DOUBLE_EQ(service_availability(a, 3), 0.999);
  EXPECT_THROW(service_availability(a, 0), std::invalid_argument);
  EXPECT_THROW(service_availability(1.5, 2), std::invalid_argument);
}

TEST(Availability, Equation3Downtime) {
  // 1 - A = 1e-4 -> 8760 h * 1e-4 = 0.876 h = 3153.6 s
  EXPECT_NEAR(downtime_seconds_per_year(1.0 - 1e-4), 3153.6, 0.01);
  EXPECT_DOUBLE_EQ(downtime_seconds_per_year(1.0), 0.0);
}

// The paper's Figure 12, row by row.
TEST(Availability, Figure12RowsMatchPaper) {
  auto rows = figure12_table(4, 5000.0, 72.0);
  ASSERT_EQ(rows.size(), 4u);

  EXPECT_EQ(rows[0].nodes, 1);
  EXPECT_EQ(rows[0].availability_str, "98.6%");
  EXPECT_EQ(rows[0].nines, 1);
  EXPECT_EQ(rows[0].downtime_str, "5d 4h 21min");

  EXPECT_EQ(rows[1].availability_str, "99.98%");
  EXPECT_EQ(rows[1].nines, 3);
  EXPECT_EQ(rows[1].downtime_str, "1h 45min");

  EXPECT_EQ(rows[2].availability_str, "99.9997%");
  EXPECT_EQ(rows[2].nines, 5);
  EXPECT_EQ(rows[2].downtime_str, "1min 30s");

  EXPECT_EQ(rows[3].availability_str, "99.999996%");
  EXPECT_EQ(rows[3].nines, 7);
  EXPECT_EQ(rows[3].downtime_str, "1s");
}

TEST(Availability, RenderFigure12ContainsRows) {
  std::string table = render_figure12(figure12_table());
  EXPECT_NE(table.find("98.6%"), std::string::npos);
  EXPECT_NE(table.find("5d 4h 21min"), std::string::npos);
  EXPECT_NE(table.find("99.999996%"), std::string::npos);
  EXPECT_NE(table.find("1s"), std::string::npos);
}

TEST(Availability, CorrelatedFailuresCapRedundancyGains) {
  double a = node_availability(5000, 72);
  double independent = service_availability(a, 4);
  double correlated = service_availability_correlated(a, 4, 0.1);
  EXPECT_LT(correlated, independent)
      << "shared-cause outages are not reduced by redundancy";
  // beta = 0 reduces to the independent model.
  EXPECT_NEAR(service_availability_correlated(a, 4, 0.0), independent, 1e-12);
  // beta = 1: redundancy does not help at all beyond one node.
  EXPECT_NEAR(service_availability_correlated(a, 4, 1.0), a, 1e-12);
  EXPECT_THROW(service_availability_correlated(a, 4, 2.0),
               std::invalid_argument);
}

TEST(Availability, MoreNodesMonotonicallyBetter) {
  double prev = 0.0;
  for (int n = 1; n <= 8; ++n) {
    auto row = figure12_row(n, 5000, 72);
    EXPECT_GT(row.availability, prev);
    prev = row.availability;
  }
}

}  // namespace
