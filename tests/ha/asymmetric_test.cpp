#include "ha/asymmetric.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace {

using ha::AsymmetricCluster;
using ha::AsymmetricOptions;

AsymmetricOptions fast_options(int heads = 2, int computes = 2) {
  AsymmetricOptions options;
  options.head_count = heads;
  options.compute_count = computes;
  options.cal = sim::fast_calibration();
  return options;
}

pbs::JobSpec job(sim::Duration run = sim::msec(300)) {
  pbs::JobSpec spec;
  spec.run_time = run;
  return spec;
}

TEST(Asymmetric, HeadsServeIndependently) {
  AsymmetricCluster cluster(fast_options());
  pbs::Client& c0 = cluster.make_client(0);
  pbs::Client& c1 = cluster.make_client(1);
  int done = 0;
  c0.qsub(job(), [&](auto r) { done += r.has_value(); });
  c1.qsub(job(), [&](auto r) { done += r.has_value(); });
  testutil::run_until(cluster.sim(), [&] { return done == 2; });
  EXPECT_EQ(cluster.server(0).jobs().size(), 1u);
  EXPECT_EQ(cluster.server(1).jobs().size(), 1u);
  cluster.sim().run_for(sim::seconds(10));
  EXPECT_EQ(cluster.server(0).count_in_state(pbs::JobState::kComplete), 1u);
  EXPECT_EQ(cluster.server(1).count_in_state(pbs::JobState::kComplete), 1u);
}

TEST(Asymmetric, NoCoordinationMeansIndependentJobIds) {
  // Both heads hand out job id 1: there is no global state (the model's
  // limitation for stateful services, Section 2).
  AsymmetricCluster cluster(fast_options());
  pbs::Client& c0 = cluster.make_client(0);
  pbs::Client& c1 = cluster.make_client(1);
  pbs::JobId id0 = pbs::kInvalidJob, id1 = pbs::kInvalidJob;
  c0.qsub(job(), [&](auto r) { id0 = r ? r->job_id : 0; });
  c1.qsub(job(), [&](auto r) { id1 = r ? r->job_id : 0; });
  testutil::run_until(cluster.sim(), [&] {
    return id0 != pbs::kInvalidJob && id1 != pbs::kInvalidJob;
  });
  EXPECT_EQ(id0, id1) << "duplicate ids: the heads are uncoordinated";
}

TEST(Asymmetric, HeadFailureStrandsItsJobs) {
  AsymmetricCluster cluster(fast_options());
  pbs::Client& c0 = cluster.make_client(0);
  pbs::JobId id = pbs::kInvalidJob;
  c0.qsub(job(sim::seconds(600)), [&](auto r) { id = r ? r->job_id : 0; });
  testutil::run_until(cluster.sim(), [&] { return id != pbs::kInvalidJob; });
  cluster.net().crash_host(cluster.head_host(0));
  cluster.sim().run_for(sim::seconds(1));
  EXPECT_EQ(cluster.stranded_jobs(), 1u)
      << "asymmetric A/A does not replicate state: head 0's queue is gone";
  // Head 1 still serves new work (the availability benefit that remains).
  pbs::Client& c1 = cluster.make_client(1);
  bool ok = false;
  c1.qsub(job(), [&](auto r) { ok = r.has_value(); });
  testutil::run_until(cluster.sim(), [&] { return ok; });
  EXPECT_TRUE(ok);
}

TEST(Asymmetric, ThroughputScalesAcrossHeads) {
  // Two users on two heads submit in parallel: the wall-clock for 2k
  // submissions approaches the single-head time for k (the model's selling
  // point for high-throughput scenarios).
  AsymmetricCluster two(fast_options(2, 2));
  pbs::Client& c0 = two.make_client(0);
  pbs::Client& c1 = two.make_client(1);
  const int k = 10;
  int done2 = 0;
  sim::Time start2 = two.sim().now();
  std::function<void(pbs::Client&, int)> chain = [&](pbs::Client& c, int left) {
    c.qsub(job(sim::seconds(600)), [&, left](auto) {
      ++done2;
      if (left > 1) chain(c, left - 1);
    });
  };
  chain(c0, k);
  chain(c1, k);
  testutil::run_until(two.sim(), [&] { return done2 == 2 * k; },
                      sim::seconds(120), sim::usec(100));
  sim::Duration parallel_time = two.sim().now() - start2;

  AsymmetricCluster one(fast_options(1, 2));
  pbs::Client& c = one.make_client(0);
  int done1 = 0;
  sim::Time start1 = one.sim().now();
  std::function<void(int)> chain1 = [&](int left) {
    c.qsub(job(sim::seconds(600)), [&, left](auto) {
      ++done1;
      if (left > 1) chain1(left - 1);
    });
  };
  chain1(2 * k);
  testutil::run_until(one.sim(), [&] { return done1 == 2 * k; },
                      sim::seconds(120), sim::usec(100));
  sim::Duration serial_time = one.sim().now() - start1;

  EXPECT_LT(parallel_time.us, serial_time.us * 3 / 4)
      << "two active heads materially beat one for submission throughput";
}

}  // namespace
