#include "ha/active_standby.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace {

using ha::ActiveStandbyCluster;
using ha::ActiveStandbyOptions;

ActiveStandbyOptions fast_as_options() {
  ActiveStandbyOptions options;
  options.cal = sim::fast_calibration();
  options.heartbeat_interval = sim::msec(100);
  options.detect_timeout = sim::msec(400);
  options.restart_delay = sim::seconds(3);
  return options;
}

pbs::JobSpec job(sim::Duration run = sim::msec(300)) {
  pbs::JobSpec spec;
  spec.run_time = run;
  return spec;
}

TEST(ActiveStandby, NormalOperationNoFailover) {
  ActiveStandbyCluster cluster(fast_as_options());
  pbs::Client& client = cluster.make_client();
  bool done = false;
  client.qsub(job(), [&](auto r) { done = r.has_value(); });
  testutil::run_until(cluster.sim(), [&] { return done; });
  EXPECT_TRUE(done);
  cluster.sim().run_for(sim::seconds(30));
  EXPECT_FALSE(cluster.failed_over());
  EXPECT_EQ(cluster.active_server().count_in_state(pbs::JobState::kComplete),
            1u);
}

TEST(ActiveStandby, FailoverBringsStandbyUpWithState) {
  ActiveStandbyCluster cluster(fast_as_options());
  pbs::Client& client = cluster.make_client();
  pbs::JobId id = pbs::kInvalidJob;
  client.qsub(job(sim::seconds(600)), [&](auto r) {
    if (r) id = r->job_id;
  });
  testutil::run_until(cluster.sim(), [&] { return id != pbs::kInvalidJob; });

  sim::Time crash_time = cluster.sim().now();
  cluster.net().crash_host(cluster.primary_host());
  ASSERT_TRUE(testutil::run_until(
      cluster.sim(), [&] { return cluster.failed_over(); }, sim::seconds(30)));
  // Interruption of service: detection + restart delay.
  sim::Duration detection = cluster.failover_time() - crash_time;
  EXPECT_GE(detection.us, sim::msec(300).us);
  cluster.sim().run_for(sim::seconds(5));
  EXPECT_EQ(cluster.active_endpoint().host, cluster.standby_host());
  // The checkpointed job survived on shared storage...
  auto recovered = cluster.active_server().find_job(id);
  ASSERT_TRUE(recovered.has_value());
  // ...but was requeued: active/standby restarts running applications.
  EXPECT_NE(recovered->state, pbs::JobState::kComplete);
}

TEST(ActiveStandby, ServiceGapDuringFailover) {
  // Unlike JOSHUA, there is a window with NO service at all.
  ActiveStandbyCluster cluster(fast_as_options());
  pbs::Client& client = cluster.make_client();
  cluster.net().crash_host(cluster.primary_host());
  // Submit during the failover window: must fail (timeout).
  bool called = false;
  std::optional<pbs::SubmitResponse> got{pbs::SubmitResponse{}};
  client.qsub(job(), [&](auto r) {
    called = true;
    got = r;
  });
  testutil::run_until(cluster.sim(), [&] { return called; }, sim::seconds(60));
  EXPECT_TRUE(called);
  EXPECT_FALSE(got.has_value()) << "active/standby has an outage window";

  // After failover completes, the standby serves.
  testutil::run_until(cluster.sim(),
                      [&] { return cluster.failed_over(); }, sim::seconds(30));
  cluster.sim().run_for(sim::seconds(5));
  client.set_server(cluster.active_endpoint());
  bool ok = false;
  client.qsub(job(), [&](auto r) { ok = r.has_value(); });
  testutil::run_until(cluster.sim(), [&] { return ok; }, sim::seconds(30));
  EXPECT_TRUE(ok);
}

TEST(ActiveStandby, PeriodicCheckpointCanRollBack) {
  // With a coarse checkpoint interval, submissions after the last
  // checkpoint are LOST on failover -- the rollback the paper warns about.
  ActiveStandbyOptions options = fast_as_options();
  options.checkpoint_interval = sim::seconds(10);
  ActiveStandbyCluster cluster(options);
  pbs::Client& client = cluster.make_client();

  // First job inside the first checkpoint window...
  pbs::JobId first = pbs::kInvalidJob;
  client.qsub(job(sim::seconds(600)), [&](auto r) {
    if (r) first = r->job_id;
  });
  testutil::run_until(cluster.sim(),
                      [&] { return first != pbs::kInvalidJob; });
  // ...survive a checkpoint boundary...
  cluster.sim().run_for(sim::seconds(11));
  // ...then a second job that never reaches a checkpoint.
  pbs::JobId second = pbs::kInvalidJob;
  client.qsub(job(sim::seconds(600)), [&](auto r) {
    if (r) second = r->job_id;
  });
  testutil::run_until(cluster.sim(),
                      [&] { return second != pbs::kInvalidJob; });
  cluster.sim().run_for(sim::seconds(2));
  cluster.net().crash_host(cluster.primary_host());
  testutil::run_until(cluster.sim(), [&] { return cluster.failed_over(); },
                      sim::seconds(30));
  cluster.sim().run_for(sim::seconds(5));

  EXPECT_TRUE(cluster.active_server().find_job(first).has_value());
  EXPECT_FALSE(cluster.active_server().find_job(second).has_value())
      << "rollback to the last checkpoint loses the second submission";
}

}  // namespace
