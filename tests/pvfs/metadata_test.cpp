#include "pvfs/metadata.h"

#include <gtest/gtest.h>

namespace {

using namespace pvfs;

class MetadataTest : public ::testing::Test {
 protected:
  MdResponse mkdir(Handle dir, const std::string& name) {
    MdRequest req;
    req.op = MdOp::kMkdir;
    req.dir = dir;
    req.name = name;
    req.mode = 0755;
    return md.apply_typed(req);
  }
  MdResponse create(Handle dir, const std::string& name) {
    MdRequest req;
    req.op = MdOp::kCreate;
    req.dir = dir;
    req.name = name;
    return md.apply_typed(req);
  }
  MdResponse lookup(Handle dir, const std::string& name) {
    MdRequest req;
    req.op = MdOp::kLookup;
    req.dir = dir;
    req.name = name;
    return md.apply_typed(req);
  }
  MdResponse remove(Handle dir, const std::string& name) {
    MdRequest req;
    req.op = MdOp::kRemove;
    req.dir = dir;
    req.name = name;
    return md.apply_typed(req);
  }
  MetadataServer md;
};

TEST_F(MetadataTest, RootExists) {
  EXPECT_EQ(md.resolve("/"), kRootHandle);
  auto attr = md.attr_of(kRootHandle);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->type, ObjType::kDirectory);
  EXPECT_EQ(md.object_count(), 1u);
}

TEST_F(MetadataTest, CreateLookupRoundTrip) {
  MdResponse created = create(kRootHandle, "data.bin");
  ASSERT_EQ(created.status, MdStatus::kOk);
  EXPECT_NE(created.handle, kInvalidHandle);
  MdResponse found = lookup(kRootHandle, "data.bin");
  ASSERT_EQ(found.status, MdStatus::kOk);
  EXPECT_EQ(found.handle, created.handle);
  EXPECT_EQ(found.attr.type, ObjType::kFile);
}

TEST_F(MetadataTest, MkdirAndNesting) {
  MdResponse home = mkdir(kRootHandle, "home");
  ASSERT_EQ(home.status, MdStatus::kOk);
  MdResponse alice = mkdir(home.handle, "alice");
  ASSERT_EQ(alice.status, MdStatus::kOk);
  create(alice.handle, "thesis.tex");
  EXPECT_EQ(md.resolve("/home/alice/thesis.tex"),
            lookup(alice.handle, "thesis.tex").handle);
  EXPECT_EQ(md.resolve("/home/bob"), kInvalidHandle);
}

TEST_F(MetadataTest, DuplicateCreateRejected) {
  ASSERT_EQ(create(kRootHandle, "x").status, MdStatus::kOk);
  EXPECT_EQ(create(kRootHandle, "x").status, MdStatus::kExists);
  EXPECT_EQ(mkdir(kRootHandle, "x").status, MdStatus::kExists);
}

TEST_F(MetadataTest, InvalidNamesRejected) {
  EXPECT_EQ(create(kRootHandle, "").status, MdStatus::kInvalid);
  EXPECT_EQ(create(kRootHandle, ".").status, MdStatus::kInvalid);
  EXPECT_EQ(create(kRootHandle, "..").status, MdStatus::kInvalid);
  EXPECT_EQ(create(kRootHandle, "a/b").status, MdStatus::kInvalid);
}

TEST_F(MetadataTest, LookupErrors) {
  EXPECT_EQ(lookup(kRootHandle, "ghost").status, MdStatus::kNotFound);
  EXPECT_EQ(lookup(999, "x").status, MdStatus::kNotFound);
  Handle file = create(kRootHandle, "f").handle;
  EXPECT_EQ(lookup(file, "x").status, MdStatus::kNotDirectory);
}

TEST_F(MetadataTest, RemoveFileAndEmptyDir) {
  Handle dir = mkdir(kRootHandle, "d").handle;
  create(dir, "f");
  EXPECT_EQ(remove(kRootHandle, "d").status, MdStatus::kNotEmpty);
  EXPECT_EQ(remove(dir, "f").status, MdStatus::kOk);
  EXPECT_EQ(remove(kRootHandle, "d").status, MdStatus::kOk);
  EXPECT_EQ(md.object_count(), 1u) << "only the root remains";
  EXPECT_EQ(remove(kRootHandle, "d").status, MdStatus::kNotFound);
}

TEST_F(MetadataTest, ReaddirSortedWithTypes) {
  mkdir(kRootHandle, "sub");
  create(kRootHandle, "a.txt");
  create(kRootHandle, "b.txt");
  MdRequest req;
  req.op = MdOp::kReaddir;
  req.dir = kRootHandle;
  MdResponse resp = md.apply_typed(req);
  ASSERT_EQ(resp.status, MdStatus::kOk);
  ASSERT_EQ(resp.entries.size(), 3u);
  EXPECT_EQ(resp.entries[0].name, "a.txt");
  EXPECT_EQ(resp.entries[0].type, ObjType::kFile);
  EXPECT_EQ(resp.entries[2].name, "sub");
  EXPECT_EQ(resp.entries[2].type, ObjType::kDirectory);
}

TEST_F(MetadataTest, SetattrBumpsVersionAndMtime) {
  Handle f = create(kRootHandle, "f").handle;
  Attr before = *md.attr_of(f);
  MdRequest req;
  req.op = MdOp::kSetattr;
  req.handle = f;
  req.mode = 0600;
  req.size = 4096;
  MdResponse resp = md.apply_typed(req);
  ASSERT_EQ(resp.status, MdStatus::kOk);
  EXPECT_EQ(resp.attr.mode, 0600u);
  EXPECT_EQ(resp.attr.size, 4096u);
  EXPECT_GT(resp.attr.version, before.version);
  EXPECT_GT(resp.attr.mtime, before.mtime);
}

TEST_F(MetadataTest, RenameMovesAcrossDirectories) {
  Handle src = mkdir(kRootHandle, "src").handle;
  Handle dst = mkdir(kRootHandle, "dst").handle;
  Handle f = create(src, "f").handle;
  MdRequest req;
  req.op = MdOp::kRename;
  req.dir = src;
  req.name = "f";
  req.dir2 = dst;
  req.name2 = "g";
  ASSERT_EQ(md.apply_typed(req).status, MdStatus::kOk);
  EXPECT_EQ(lookup(src, "f").status, MdStatus::kNotFound);
  EXPECT_EQ(lookup(dst, "g").handle, f);
}

TEST_F(MetadataTest, RenameReplacesDestinationFile) {
  Handle f1 = create(kRootHandle, "a").handle;
  create(kRootHandle, "b");
  MdRequest req;
  req.op = MdOp::kRename;
  req.dir = kRootHandle;
  req.name = "a";
  req.dir2 = kRootHandle;
  req.name2 = "b";
  ASSERT_EQ(md.apply_typed(req).status, MdStatus::kOk);
  EXPECT_EQ(lookup(kRootHandle, "b").handle, f1);
  EXPECT_EQ(md.resolve("/a"), kInvalidHandle);
}

TEST_F(MetadataTest, RenameOntoNonEmptyDirRejected) {
  mkdir(kRootHandle, "a");
  Handle b = mkdir(kRootHandle, "b").handle;
  create(b, "inner");
  MdRequest req;
  req.op = MdOp::kRename;
  req.dir = kRootHandle;
  req.name = "a";
  req.dir2 = kRootHandle;
  req.name2 = "b";
  EXPECT_EQ(md.apply_typed(req).status, MdStatus::kNotEmpty);
}

TEST_F(MetadataTest, WireRoundTrips) {
  MdRequest req;
  req.op = MdOp::kRename;
  req.dir = 3;
  req.handle = 4;
  req.dir2 = 5;
  req.name = "old";
  req.name2 = "new";
  req.mode = 0700;
  req.size = 99;
  MdRequest back = decode_request(encode(req));
  EXPECT_EQ(back.op, MdOp::kRename);
  EXPECT_EQ(back.dir2, 5u);
  EXPECT_EQ(back.name2, "new");
  EXPECT_EQ(back.size, 99u);

  MdResponse resp{MdStatus::kOk, 7, {ObjType::kDirectory, 0755, 0, 1, 2, 3},
                  {{"x", 8, ObjType::kFile}}};
  MdResponse rback = decode_response(encode(resp));
  EXPECT_EQ(rback.handle, 7u);
  EXPECT_EQ(rback.attr.type, ObjType::kDirectory);
  ASSERT_EQ(rback.entries.size(), 1u);
  EXPECT_EQ(rback.entries[0].name, "x");
}

TEST_F(MetadataTest, SnapshotRoundTripPreservesEverything) {
  Handle home = mkdir(kRootHandle, "home").handle;
  create(home, "f1");
  create(home, "f2");
  sim::Payload snap = md.snapshot();

  MetadataServer other;
  other.install(snap);
  EXPECT_EQ(other.object_count(), md.object_count());
  EXPECT_EQ(other.resolve("/home/f1"), md.resolve("/home/f1"));
  EXPECT_EQ(other.operations(), md.operations());
  // New handles continue from the same point (determinism preserved).
  MdRequest req;
  req.op = MdOp::kCreate;
  req.dir = kRootHandle;
  req.name = "next";
  Handle h1 = md.apply_typed(req).handle;
  Handle h2 = other.apply_typed(req).handle;
  EXPECT_EQ(h1, h2);
}

TEST_F(MetadataTest, DeterminismTwoServersSameStream) {
  MetadataServer a, b;
  std::vector<MdRequest> stream;
  MdRequest mk;
  mk.op = MdOp::kMkdir;
  mk.dir = kRootHandle;
  mk.name = "d";
  stream.push_back(mk);
  MdRequest cr;
  cr.op = MdOp::kCreate;
  cr.dir = kRootHandle;
  cr.name = "f";
  stream.push_back(cr);
  MdRequest rm;
  rm.op = MdOp::kRemove;
  rm.dir = kRootHandle;
  rm.name = "f";
  stream.push_back(rm);
  for (const MdRequest& r : stream) {
    sim::Payload ra = a.apply(encode(r));
    sim::Payload rb = b.apply(encode(r));
    EXPECT_EQ(ra, rb) << "responses must be byte-identical";
  }
  EXPECT_EQ(a.snapshot(), b.snapshot()) << "states must be byte-identical";
}

TEST_F(MetadataTest, ReadOnlyClassification) {
  MdRequest look;
  look.op = MdOp::kLookup;
  EXPECT_TRUE(md.is_read_only(encode(look)));
  MdRequest rd;
  rd.op = MdOp::kReaddir;
  EXPECT_TRUE(md.is_read_only(encode(rd)));
  MdRequest cr;
  cr.op = MdOp::kCreate;
  EXPECT_FALSE(md.is_read_only(encode(cr)));
  EXPECT_FALSE(md.is_read_only(sim::Payload{}));
}

TEST_F(MetadataTest, CorruptRequestYieldsInvalid) {
  sim::Payload garbage{0x1};
  MdResponse resp = decode_response(md.apply(garbage));
  EXPECT_EQ(resp.status, MdStatus::kInvalid);
}

TEST_F(MetadataTest, InstrumentedServerReportsItsWork) {
  telemetry::Registry metrics;
  md.instrument(metrics);

  Handle dir = mkdir(kRootHandle, "a").handle;
  create(dir, "f");
  lookup(dir, "f");
  lookup(dir, "missing");  // error
  MdRequest rd;
  rd.op = MdOp::kReaddir;
  rd.dir = dir;
  md.apply_typed(rd);

  EXPECT_EQ(metrics.find_counter("pvfs.md_ops")->value, 5u);
  EXPECT_EQ(metrics.find_counter("pvfs.md_ops.mkdir")->value, 1u);
  EXPECT_EQ(metrics.find_counter("pvfs.md_ops.create")->value, 1u);
  EXPECT_EQ(metrics.find_counter("pvfs.md_ops.lookup")->value, 2u);
  EXPECT_EQ(metrics.find_counter("pvfs.md_ops.readdir")->value, 1u);
  EXPECT_EQ(metrics.find_counter("pvfs.md_errors")->value, 1u);
  const auto* entries = metrics.find_histogram("pvfs.readdir_entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->data.count, 1u);
  EXPECT_EQ(entries->data.max, 1);  // /a holds exactly one file

  // Snapshot round-trips are counted on both sides.
  sim::Payload snap = md.snapshot();
  MetadataServer other;
  other.instrument(metrics);
  other.install(snap);
  EXPECT_EQ(metrics.find_counter("pvfs.snapshots")->value, 1u);
  EXPECT_EQ(metrics.find_counter("pvfs.snapshot_installs")->value, 1u);
  EXPECT_EQ(metrics.find_histogram("pvfs.snapshot_bytes")->data.count, 1u);
}

TEST_F(MetadataTest, UninstrumentedServerStillWorks) {
  // Default telemetry handles are no-op sinks; behaviour is unchanged.
  Handle dir = mkdir(kRootHandle, "plain").handle;
  EXPECT_NE(dir, kInvalidHandle);
  EXPECT_EQ(lookup(kRootHandle, "plain").handle, dir);
}

}  // namespace
