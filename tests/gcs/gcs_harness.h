// Harness for protocol-level gcs tests: N group members on N hosts with a
// fast calibration, per-member delivery/view logs, and a tiny replicated
// application (an append log) for state-transfer coverage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gcs/group_member.h"
#include "net/wire.h"
#include "sim/calibration.h"
#include "sim/failure.h"
#include "testutil.h"

namespace gcstest {

struct MemberLog {
  std::vector<gcs::Delivered> delivered;
  std::vector<gcs::View> views;
  /// Replicated toy application: every delivered payload appends here;
  /// state transfer copies the whole log.
  std::vector<sim::Payload> app_log;
};

class GcsHarness {
 public:
  explicit GcsHarness(int n, uint64_t seed = 1,
                      std::function<void(gcs::GroupConfig&)> tweak = nullptr)
      : sim(seed), net(sim, sim::fast_calibration().network), faults(net) {
    for (int i = 0; i < n; ++i) hosts.push_back(net.add_host("h" + std::to_string(i)).id());
    logs.resize(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      gcs::GroupConfig cfg = gcs::group_config_from(sim::fast_calibration());
      cfg.port = 7000;
      cfg.peers = hosts;
      cfg.heartbeat_interval = sim::msec(50);
      cfg.suspect_timeout = sim::msec(250);
      cfg.flush_timeout = sim::msec(500);
      cfg.join_retry = sim::msec(100);
      if (tweak) tweak(cfg);
      size_t idx = static_cast<size_t>(i);
      gcs::GroupCallbacks cb;
      cb.on_view = [this, idx](const gcs::View& v) {
        logs[idx].views.push_back(v);
      };
      cb.on_deliver = [this, idx](const gcs::Delivered& d) {
        logs[idx].delivered.push_back(d);
        logs[idx].app_log.push_back(d.payload);
      };
      cb.get_state = [this, idx] {
        net::Writer w;
        w.vec(logs[idx].app_log,
              [](net::Writer& w2, const sim::Payload& p) { w2.bytes(p); });
        return w.take();
      };
      cb.install_state = [this, idx](const sim::Payload& state) {
        net::Reader r(state);
        logs[idx].app_log =
            r.vec<sim::Payload>([](net::Reader& r2) { return r2.bytes(); });
      };
      members.push_back(std::make_unique<gcs::GroupMember>(
          net, hosts[static_cast<size_t>(i)], cfg, cb));
    }
  }

  void join_all() {
    for (auto& m : members) m->join();
  }

  /// True when every up member is in the same view of size `n`.
  bool converged(size_t n) const {
    const gcs::View* ref = nullptr;
    size_t live = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (!net.host(hosts[i]).up()) continue;
      if (members[i]->state() == gcs::GroupMember::State::kDown) continue;
      if (members[i]->state() != gcs::GroupMember::State::kMember) return false;
      ++live;
      if (!ref) {
        ref = &members[i]->view();
      } else if (members[i]->view().id != ref->id) {
        return false;
      }
    }
    return ref != nullptr && ref->size() == n && live >= n;
  }

  bool run_until_converged(size_t n, sim::Duration deadline = sim::seconds(30)) {
    return testutil::run_until(sim, [&] { return converged(n); }, deadline);
  }

  /// AGREED-delivery sequences of two members must be consistent: equal on
  /// the common prefix (one may lag).
  static bool prefix_consistent(const std::vector<gcs::Delivered>& a,
                                const std::vector<gcs::Delivered>& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i].sender != b[i].sender || a[i].seq != b[i].seq) return false;
    }
    return true;
  }

  /// Per-sender delivery must be gap-free and duplicate-free.
  static bool fifo_clean(const std::vector<gcs::Delivered>& log) {
    std::map<gcs::MemberId, uint64_t> last;
    for (const gcs::Delivered& d : log) {
      if (d.seq != last[d.sender] + 1) return false;
      last[d.sender] = d.seq;
    }
    return true;
  }

  sim::Payload payload_of(int v) {
    return sim::Payload{static_cast<uint8_t>(v & 0xff),
                        static_cast<uint8_t>((v >> 8) & 0xff)};
  }

  sim::Simulation sim;
  sim::Network net;
  sim::FailureInjector faults;
  std::vector<sim::HostId> hosts;
  std::vector<std::unique_ptr<gcs::GroupMember>> members;
  std::vector<MemberLog> logs;
};

}  // namespace gcstest
