// Sender flow-control window edge cases (satellite of the batching PR):
//
//   * window = 1 degenerates to lockstep -- at most one own AGREED multicast
//     in flight, every further send queues (counted as a stall) and is
//     released only by the previous one's delivery. Order is preserved.
//   * A receiver that never acks (partitioned, but not suspected thanks to a
//     huge suspect timeout) stalls the sender at the window instead of
//     letting it pump unbounded traffic into the group: the network sees at
//     most `window` data messages, the rest wait in the sender's queue.
#include <gtest/gtest.h>

#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;

TEST(FlowControl, WindowOneIsLockstep) {
  auto tweak = [](gcs::GroupConfig& cfg) { cfg.inflight_window = 1; };
  GcsHarness h(3, 1, tweak);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));

  constexpr int kSends = 5;
  for (int i = 0; i < kSends; ++i)
    h.members[0]->multicast(h.payload_of(i));

  // Back-to-back sends: one in flight, the rest stalled behind the window.
  EXPECT_EQ(h.members[0]->inflight(), 1u);
  EXPECT_EQ(h.members[0]->stats().window_stalls,
            static_cast<uint64_t>(kSends - 1));

  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != static_cast<size_t>(kSends)) return false;
    return true;
  }));
  EXPECT_EQ(h.members[0]->inflight(), 0u) << "window debt fully repaid";

  // Lockstep must not reorder: seq 1..kSends in send order everywhere.
  for (size_t m = 0; m < 3; ++m) {
    ASSERT_EQ(h.logs[m].delivered.size(), static_cast<size_t>(kSends));
    for (int i = 0; i < kSends; ++i) {
      EXPECT_EQ(h.logs[m].delivered[static_cast<size_t>(i)].sender,
                h.hosts[0]);
      EXPECT_EQ(h.logs[m].delivered[static_cast<size_t>(i)].seq,
                static_cast<uint64_t>(i + 1));
      EXPECT_EQ(h.logs[m].delivered[static_cast<size_t>(i)].payload,
                h.payload_of(i));
    }
  }
}

TEST(FlowControl, NeverAckingReceiverStallsSenderAtWindow) {
  constexpr uint32_t kWindow = 4;
  auto tweak = [](gcs::GroupConfig& cfg) {
    cfg.inflight_window = kWindow;
    // No suspicion: the silent member stays in the view, so the all-ack
    // condition (and with it the sender's window debt) never clears.
    cfg.suspect_timeout = sim::seconds(600);
  };
  GcsHarness h(3, 2, tweak);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));

  // Member 2 goes silent (cable pull) but is never evicted.
  h.net.set_partition(h.hosts[2], 1);
  uint64_t sent_before = h.members[0]->stats().data_sent;

  constexpr int kSends = 10;
  for (int i = 0; i < kSends; ++i)
    h.members[0]->multicast(h.payload_of(i));
  h.sim.run_for(sim::seconds(5));

  // Nothing can deliver without the silent member's acks...
  EXPECT_TRUE(h.logs[0].delivered.empty());
  EXPECT_TRUE(h.logs[1].delivered.empty());
  // ...so the sender is pinned at the window, the excess stalled, and the
  // network saw at most `window` new data multicasts (retransmits aside,
  // none happen here: member 1 received everything that was sent).
  EXPECT_EQ(h.members[0]->inflight(), kWindow);
  EXPECT_EQ(h.members[0]->stats().window_stalls,
            static_cast<uint64_t>(kSends - kWindow));
  EXPECT_EQ(h.members[0]->stats().data_sent - sent_before, kWindow);
  EXPECT_LE(h.members[1]->stats().data_received, kWindow);

  // Heal: acks resume, the window drains, every queued send delivers in
  // order at everyone.
  h.net.clear_partitions();
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != static_cast<size_t>(kSends)) return false;
    return true;
  }));
  EXPECT_EQ(h.members[0]->inflight(), 0u);
  for (size_t m = 0; m < 3; ++m) {
    EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[m].delivered)) << "member " << m;
    for (int i = 0; i < kSends; ++i)
      EXPECT_EQ(h.logs[m].delivered[static_cast<size_t>(i)].payload,
                h.payload_of(i));
  }
}

}  // namespace
