// NACK-retransmission edge cases in the reliability layer: a healed
// partition recovers lost data via NACK -> retransmit, duplicate NACKs for
// the same gap are deduplicated inside the nacked_ window (and re-armed
// after it expires), and the Stats counter agrees with the "gcs.nacks_sent"
// telemetry counter.
//
// The suspect timeout is raised far above every partition in these tests so
// no view change fires: this exercises the reliability layer alone, not the
// membership protocol.
#include <gtest/gtest.h>

#include "gcs_harness.h"

namespace {

using gcstest::GcsHarness;

uint64_t total_nacks_sent(const GcsHarness& h) {
  uint64_t total = 0;
  for (const auto& m : h.members) total += m->stats().nacks_sent;
  return total;
}

uint64_t nacks_counter(GcsHarness& h) {
  const auto* cell = h.sim.telemetry().metrics().find_counter("gcs.nacks_sent");
  return cell ? cell->value : 0;
}

size_t deliveries_of(const gcstest::MemberLog& log, gcs::MemberId sender,
                     uint64_t seq) {
  size_t n = 0;
  for (const auto& d : log.delivered) {
    if (d.sender == sender && d.seq == seq) ++n;
  }
  return n;
}

TEST(Nack, HealedPartitionRecoversViaRetransmit) {
  GcsHarness h(2, 1, [](gcs::GroupConfig& cfg) {
    cfg.suspect_timeout = sim::seconds(30);  // no view change in this test
    cfg.flush_timeout = sim::seconds(60);
  });
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));

  // Cut member 1 off, multicast while it cannot hear, then heal. The only
  // way member 1 can ever see the message is a NACK-triggered retransmit
  // prompted by member 0's periodic cut advertising sent_upto.
  sim::Time t0 = h.sim.now();
  h.faults.partition(h.hosts[1], 1, t0 + sim::msec(10), t0 + sim::msec(200));
  h.sim.run_for(sim::msec(50));
  h.members[0]->multicast(h.payload_of(7));
  h.sim.run_for(sim::msec(100));
  EXPECT_EQ(deliveries_of(h.logs[1], h.hosts[0], 1), 0u)
      << "partitioned member must not have the message yet";

  // Heal and give the NACK/retransmit cycle time to complete.
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return deliveries_of(h.logs[1], h.hosts[0], 1) > 0; },
      sim::seconds(5)));

  EXPECT_EQ(deliveries_of(h.logs[1], h.hosts[0], 1), 1u)
      << "retransmit must deliver exactly once";
  EXPECT_GE(h.members[1]->stats().nacks_sent, 1u);
  EXPECT_GE(h.members[0]->stats().retransmits_served, 1u);
  EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[1].delivered));
  EXPECT_TRUE(
      GcsHarness::prefix_consistent(h.logs[0].delivered, h.logs[1].delivered));
  // No spurious view change happened: reliability-layer-only recovery.
  EXPECT_TRUE(h.converged(2));
  EXPECT_EQ(nacks_counter(h), total_nacks_sent(h));
}

TEST(Nack, DuplicateNacksDedupedWithinWindowRearmedAfter) {
  // Heartbeat cuts every 10ms re-announce the gap ~6 times per dedup window
  // (nack_delay * 4 = 60ms). A slow retransmit path (send_proc 150ms) keeps
  // the gap open across several windows, so:
  //   * without dedup there would be one NACK per observation (dozens);
  //   * with dedup there is about one per expired window (a few), and
  //   * at least two in total, proving the window re-arms rather than
  //     suppressing the gap forever.
  GcsHarness h(2, 1, [](gcs::GroupConfig& cfg) {
    cfg.suspect_timeout = sim::seconds(30);
    cfg.flush_timeout = sim::seconds(60);
    cfg.heartbeat_interval = sim::msec(10);
    cfg.nack_delay = sim::msec(15);
    cfg.send_proc = sim::msec(150);  // retransmission leaves ~3 windows open
  });
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));

  sim::Time t0 = h.sim.now();
  h.faults.partition(h.hosts[1], 1, t0 + sim::msec(5), t0 + sim::msec(100));
  h.sim.run_for(sim::msec(50));
  h.members[0]->multicast(h.payload_of(9));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return deliveries_of(h.logs[1], h.hosts[0], 1) > 0; },
      sim::seconds(10)));
  // Let any still-pending NACK timers and duplicate retransmits land.
  h.sim.run_for(sim::seconds(1));

  uint64_t nacks = h.members[1]->stats().nacks_sent;
  EXPECT_GE(nacks, 2u) << "the dedup window must re-arm after expiring";
  EXPECT_LE(nacks, 6u) << "per-observation NACKs were not deduplicated";
  // Duplicate retransmits (one per NACK that got through) collapse in the
  // ordering buffer: still exactly one delivery.
  EXPECT_EQ(deliveries_of(h.logs[1], h.hosts[0], 1), 1u);
  EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[1].delivered));
  EXPECT_EQ(nacks_counter(h), total_nacks_sent(h))
      << "Stats::nacks_sent and the gcs.nacks_sent counter must agree";
}

TEST(Nack, NoGapMeansNoNacks) {
  GcsHarness h(3, 1);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  for (int i = 0; i < 10; ++i) {
    h.members[static_cast<size_t>(i) % 3]->multicast(h.payload_of(i));
    h.sim.run_for(sim::msec(20));
  }
  h.sim.run_for(sim::seconds(1));
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(h.logs[i].delivered.size(), 10u);
    EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[i].delivered));
  }
  EXPECT_EQ(total_nacks_sent(h), 0u)
      << "a loss-free run must not NACK anything";
  EXPECT_EQ(nacks_counter(h), 0u);
}

}  // namespace
