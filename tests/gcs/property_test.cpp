// Property-style sweeps over group size, seed, loss rate and fault
// schedules: the virtual-synchrony invariants must hold in every run.
//
//   I1 (total order): any two members' AGREED delivery logs agree on their
//      common prefix.
//   I2 (integrity): per-sender delivery is duplicate-free and gap-free.
//   I3 (liveness): with a stable final membership, every message sent by a
//      member of the final view is eventually delivered at all final
//      members.
//   I4 (view agreement): surviving members install the same final view.
#include <gtest/gtest.h>

#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;

struct SweepParam {
  int members;
  uint64_t seed;
  double loss_rate;
  bool crash_one;
  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << "n" << p.members << "_seed" << p.seed << "_loss"
              << static_cast<int>(p.loss_rate * 100) << "_crash"
              << (p.crash_one ? 1 : 0);
  }
};

class GcsPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GcsPropertyTest, VirtualSynchronyInvariants) {
  const SweepParam p = GetParam();
  GcsHarness h(p.members, p.seed);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(static_cast<size_t>(p.members)));

  h.net.mutable_config().loss_rate = p.loss_rate;

  // Random-ish traffic from every live member, interleaved with sim
  // progress. The last member may crash after round 3.
  int sent = 0;
  std::vector<int> sent_rounds(static_cast<size_t>(p.members), 0);
  for (int round = 0; round < 6; ++round) {
    for (int m = 0; m < p.members; ++m) {
      if (!h.net.host(h.hosts[static_cast<size_t>(m)]).up()) continue;
      h.members[static_cast<size_t>(m)]->multicast(h.payload_of(sent++));
      ++sent_rounds[static_cast<size_t>(m)];
      h.sim.run_for(sim::msec(static_cast<int64_t>((p.seed + m) % 7)));
    }
    if (p.crash_one && round == 3) {
      h.net.mutable_config().loss_rate = 0.0;
      h.net.crash_host(h.hosts.back());
    }
  }
  h.net.mutable_config().loss_rate = 0.0;

  size_t final_members =
      static_cast<size_t>(p.members) - (p.crash_one ? 1 : 0);
  ASSERT_TRUE(h.run_until_converged(final_members, sim::seconds(120)));
  h.sim.run_for(sim::seconds(5));  // drain

  // I4: same final view everywhere (checked by run_until_converged); also
  // verify the view history is epoch-monotonic.
  for (size_t i = 0; i < final_members; ++i) {
    const auto& views = h.logs[i].views;
    for (size_t v = 1; v < views.size(); ++v)
      EXPECT_GT(views[v].id.epoch, views[v - 1].id.epoch);
  }

  // I1 + I2 across all surviving pairs.
  for (size_t i = 0; i < final_members; ++i) {
    EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[i].delivered)) << "member " << i;
    for (size_t j = i + 1; j < final_members; ++j) {
      EXPECT_TRUE(GcsHarness::prefix_consistent(h.logs[i].delivered,
                                                h.logs[j].delivered))
          << "members " << i << "," << j;
    }
  }

  // I3: all survivors delivered the same count, and messages from survivors
  // are all there. (Messages from the crashed member may or may not have
  // made it -- but identically everywhere, per I1.)
  for (size_t i = 1; i < final_members; ++i)
    EXPECT_EQ(h.logs[i].delivered.size(), h.logs[0].delivered.size());
  std::map<gcs::MemberId, int> per_sender;
  for (const auto& d : h.logs[0].delivered) per_sender[d.sender]++;
  for (size_t m = 0; m + (p.crash_one ? 1 : 0) < static_cast<size_t>(p.members);
       ++m) {
    EXPECT_EQ(per_sender[h.hosts[m]], sent_rounds[m])
        << "all sends from survivor " << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcsPropertyTest,
    ::testing::Values(
        SweepParam{2, 1, 0.0, false}, SweepParam{2, 2, 0.05, false},
        SweepParam{3, 3, 0.0, false}, SweepParam{3, 4, 0.08, false},
        SweepParam{3, 5, 0.0, true}, SweepParam{4, 6, 0.0, false},
        SweepParam{4, 7, 0.05, false}, SweepParam{4, 8, 0.0, true},
        SweepParam{5, 9, 0.03, false}, SweepParam{5, 10, 0.0, true},
        SweepParam{6, 11, 0.0, false}, SweepParam{4, 12, 0.10, true}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::ostringstream os;
      os << info.param;
      return os.str();
    });

}  // namespace
