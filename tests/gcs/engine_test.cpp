// Ordering-engine coverage: the all-ack and token-ring engines must be
// observationally equivalent (same virtual-synchrony guarantees under the
// same seeded traffic and view changes), and the token ring must survive
// its own failure modes -- a lost token and a crashed token holder.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "gcs/engine_token.h"
#include "gcs/gcs_harness.h"
#include "gcs/ordering.h"

namespace {

using gcstest::GcsHarness;

std::function<void(gcs::GroupConfig&)> use_engine(gcs::OrderingMode mode) {
  return [mode](gcs::GroupConfig& cfg) { cfg.ordering = mode; };
}

/// Index of the member currently holding the token, or -1 (in flight).
int holder_index(const GcsHarness& h) {
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (!h.net.host(h.hosts[i]).up()) continue;
    const gcs::OrderingEngine& e = h.members[i]->engine();
    if (e.mode() != gcs::OrderingMode::kTokenRing) continue;
    if (static_cast<const gcs::TokenRingEngine&>(e).holding_token())
      return static_cast<int>(i);
  }
  return -1;
}

uint64_t max_token_id(const GcsHarness& h) {
  uint64_t id = 0;
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (!h.net.host(h.hosts[i]).up()) continue;
    const gcs::OrderingEngine& e = h.members[i]->engine();
    if (e.mode() != gcs::OrderingMode::kTokenRing) continue;
    id = std::max(id,
                  static_cast<const gcs::TokenRingEngine&>(e).token_id_seen());
  }
  return id;
}

/// One deterministic campaign: n members, six rounds of traffic from every
/// live member with 10% loss, the last member crashing after round 3.
/// Returns the per-member delivery logs after the ring quiesces.
struct CampaignResult {
  std::vector<std::vector<gcs::Delivered>> logs;
  std::set<std::pair<gcs::MemberId, uint64_t>> survivor_sent;
  bool ok = false;
};

CampaignResult run_campaign(gcs::OrderingMode mode, int n, uint64_t seed) {
  CampaignResult out;
  GcsHarness h(n, seed, use_engine(mode));
  h.join_all();
  if (!h.run_until_converged(static_cast<size_t>(n))) return out;

  h.net.mutable_config().loss_rate = 0.10;
  int sent = 0;
  std::vector<uint64_t> sends(static_cast<size_t>(n), 0);  // k-th send = seq k
  for (int round = 0; round < 6; ++round) {
    for (int m = 0; m < n; ++m) {
      size_t idx = static_cast<size_t>(m);
      if (!h.net.host(h.hosts[idx]).up()) continue;
      h.members[idx]->multicast(h.payload_of(sent++));
      if (m + 1 < n)  // every survivor's full traffic must come through
        out.survivor_sent.emplace(h.members[idx]->id(), ++sends[idx]);
      h.sim.run_for(sim::msec(static_cast<int64_t>((seed + m) % 7)));
    }
    if (round == 3) {
      h.net.mutable_config().loss_rate = 0.0;
      h.net.crash_host(h.hosts.back());
    }
  }
  h.net.mutable_config().loss_rate = 0.0;

  if (!h.run_until_converged(static_cast<size_t>(n - 1))) return out;
  // Quiesce: every survivor has delivered every survivor-sent message.
  out.ok = testutil::run_until(h.sim, [&] {
    for (int m = 0; m + 1 < n; ++m) {
      std::set<std::pair<gcs::MemberId, uint64_t>> got;
      for (const gcs::Delivered& d : h.logs[static_cast<size_t>(m)].delivered)
        got.emplace(d.sender, d.seq);
      for (const auto& id : out.survivor_sent)
        if (got.find(id) == got.end()) return false;
    }
    return true;
  });
  for (const auto& log : h.logs) out.logs.push_back(log.delivered);
  return out;
}

class EngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalence, SameGuaranteesUnderSeededFaults) {
  const uint64_t seed = GetParam();
  const int n = 4;
  CampaignResult allack = run_campaign(gcs::OrderingMode::kAllAck, n, seed);
  CampaignResult token = run_campaign(gcs::OrderingMode::kTokenRing, n, seed);
  ASSERT_TRUE(allack.ok) << "all-ack campaign did not quiesce";
  ASSERT_TRUE(token.ok) << "token campaign did not quiesce";

  for (const CampaignResult* r : {&allack, &token}) {
    // Identical delivery order at every member: pairwise prefix agreement...
    for (size_t a = 0; a + 1 < r->logs.size() - 1; ++a)
      for (size_t b = a + 1; b + 1 < r->logs.size(); ++b)
        EXPECT_TRUE(GcsHarness::prefix_consistent(r->logs[a], r->logs[b]))
            << "members " << a << " and " << b << " disagree on the order";
    // ...and per-sender integrity (no gaps, no duplicates).
    for (const auto& log : r->logs)
      EXPECT_TRUE(GcsHarness::fifo_clean(log));
  }

  // Cross-engine: both engines deliver the same survivor traffic (messages
  // in flight from the crashed member may legitimately differ).
  auto survivor_set = [&](const CampaignResult& r, size_t member) {
    std::set<std::pair<gcs::MemberId, uint64_t>> got;
    for (const gcs::Delivered& d : r.logs[member])
      if (r.survivor_sent.count({d.sender, d.seq}) != 0)
        got.emplace(d.sender, d.seq);
    return got;
  };
  for (size_t m = 0; m + 1 < static_cast<size_t>(n); ++m)
    EXPECT_EQ(survivor_set(allack, m), survivor_set(token, m))
        << "engines disagree on the delivered survivor traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Values(7u, 21u, 42u));

// ---------------------------------------------------------------------------
// Direct-drive rig: one TokenRingEngine + OrderingBuffer per member with
// hand routing, for byte-precise loss windows the stochastic campaigns are
// very unlikely to hit. The data path is lossless here; only engine control
// traffic is dropped.
// ---------------------------------------------------------------------------

// Engine wire sub-types (first payload byte; mirrors engine_token.cpp).
constexpr uint8_t kSubStamps = 2;
constexpr uint8_t kSubStampNack = 3;

struct RingNode {
  RingNode(gcs::MemberId id_, const gcs::EngineTuning& t) : id(id_), eng(t) {
    buf.attach_engine(&eng);
  }
  gcs::MemberId id;
  gcs::OrderingBuffer buf;
  gcs::TokenRingEngine eng;
  std::vector<gcs::DataMsg> delivered;
};

class TokenRig {
 public:
  explicit TokenRig(int n, uint32_t max_batch = 0) {
    tuning.max_batch = max_batch;
    view.id = {1, 1};
    for (int i = 1; i <= n; ++i)
      view.members.push_back(static_cast<gcs::MemberId>(i));
    for (gcs::MemberId m : view.members)
      nodes.push_back(std::make_unique<RingNode>(m, tuning));
    for (auto& node : nodes) {
      node->buf.reset(view, node->id);
      route(node->id, node->eng.reset(view, node->id, now));
    }
  }

  RingNode& node(gcs::MemberId id) { return *nodes[id - 1]; }

  /// Route an EngineOut, recursively delivering to peers and draining.
  /// Payloads sent by `drop_from` vanish (forward timers are kept), except
  /// the first `pass_first` of them -- the knob that loses a token run
  /// *mid-batch*, after part of its stamp announcements landed.
  void route(gcs::MemberId from, gcs::EngineOut out) {
    if (out.forward_timer.us > 0) timers.insert(from);
    for (const sim::Payload& b : out.broadcasts) {
      sent.emplace_back(b[0], true);
      if (allow(from))
        for (auto& n : nodes)
          if (n->id != from) deliver(*n, from, b);
    }
    if (out.unicast) {
      sent.emplace_back(out.unicast->second[0], false);
      if (allow(from))
        deliver(node(out.unicast->first), from, out.unicast->second);
    }
  }

  bool allow(gcs::MemberId from) {
    if (from != drop_from) return true;
    if (pass_first > 0) {
      --pass_first;
      return true;
    }
    return false;
  }

  void deliver(RingNode& dst, gcs::MemberId from, const sim::Payload& p) {
    route(dst.id, dst.eng.on_control(from, p, now));
    drain(dst);
  }

  void drain(RingNode& n) {
    for (gcs::DataMsg& m : n.buf.drain()) n.delivered.push_back(std::move(m));
  }

  /// One heartbeat tick at every member, in member-id order.
  void tick() {
    now += 50'000;
    for (auto& n : nodes) route(n->id, n->eng.on_tick(now));
  }

  void multicast(gcs::MemberId sender, uint64_t seq) {
    now += 1'000;
    gcs::DataMsg m;
    m.id = {sender, seq};
    m.lamport = ++lamport;
    m.level = gcs::Delivery::kAgreed;
    for (auto& n : nodes) n->buf.insert(m);
    route(sender, node(sender).eng.on_local_send(m, now));
    for (auto& n : nodes)
      if (n->id != sender) route(n->id, n->eng.on_insert(m, now));
    for (auto& n : nodes) drain(*n);
  }

  size_t count_sent(uint8_t sub, bool broadcast) const {
    size_t c = 0;
    for (const auto& [s, b] : sent)
      if (s == sub && b == broadcast) ++c;
    return c;
  }

  gcs::EngineTuning tuning;
  gcs::View view;
  std::vector<std::unique_ptr<RingNode>> nodes;
  std::set<gcs::MemberId> timers;  ///< pending idle-forward timers (unfired)
  gcs::MemberId drop_from = sim::kInvalidHost;
  int pass_first = 0;  ///< payloads from drop_from let through before dropping
  std::vector<std::pair<uint8_t, bool>> sent;  ///< (sub-type, was-broadcast)
  int64_t now = 0;
  uint64_t lamport = 0;
};

// REVIEW.md regression: the holder stamps and locally delivers its own
// message, then the stamp announcement is lost to every peer AND the token
// hand-off is lost, so no member sees a gap and nothing is NACKable. The
// regeneration round must still learn that global 1 is taken (from the old
// holder's reply) instead of minting with a stale next_global and
// reassigning a delivered global -- which would permanently diverge the
// total order and orphan the holder's message.
TEST(TokenRing, RegenRoundNeverReusesDeliveredGlobals) {
  TokenRig rig(3);

  // Member 2 multicasts; member 1 (initial holder, idling) hands the token
  // over; member 2 stamps global 1 and delivers its own message locally,
  // but both of its packets -- the stamp announcement and the onward token
  // -- vanish.
  rig.drop_from = 2;
  rig.multicast(2, 1);
  rig.drop_from = sim::kInvalidHost;
  ASSERT_EQ(rig.node(2).eng.delivered_global(), 1u)
      << "precondition: the holder delivered its own stamped message";
  ASSERT_TRUE(rig.node(1).delivered.empty());
  ASSERT_TRUE(rig.node(3).delivered.empty());

  // Traffic queued at member 1 while the ring is dead.
  rig.multicast(1, 1);
  ASSERT_TRUE(rig.node(1).delivered.empty());

  // Ring silence past the loss timeout: member 1 (lowest) regenerates. The
  // recovery round must seed next_global past member 2's unannounced stamp.
  rig.now += 2'000'000;
  rig.tick();
  EXPECT_FALSE(rig.node(1).eng.regen_pending());
  EXPECT_EQ(rig.node(1).eng.token_id_seen(), 2u)
      << "recovery must mint a higher-id token";
  EXPECT_EQ(rig.node(1).eng.next_global(), 3u)
      << "the regenerated token reused a global assigned by the old holder";
  // No NACK yet: a fresh gap gets one full tick of grace.
  EXPECT_EQ(rig.count_sent(kSubStampNack, true), 0u);

  // The gap persists a tick; members 3 then 1 NACK (rate-limited), and the
  // old holder re-announces its orphaned stamp to each requester.
  rig.tick();
  rig.tick();
  EXPECT_EQ(rig.count_sent(kSubStampNack, true), 2u)
      << "gap NACKs must be rate-limited to one per stalled member";
  // Member 2 answers member 3's NACK; members 2 and 3 (which has the stamp
  // by then) both answer member 1's.
  EXPECT_EQ(rig.count_sent(kSubStamps, false), 3u)
      << "re-announces must be unicast to the requester";
  EXPECT_EQ(rig.count_sent(kSubStamps, true), 2u)
      << "only the two original batch announcements may be broadcast";

  // Agreement: every member delivered both messages in the same order, with
  // the old holder's pre-crash-window delivery as the common prefix.
  for (gcs::MemberId m : rig.view.members) {
    const auto& log = rig.node(m).delivered;
    ASSERT_EQ(log.size(), 2u) << "member " << m;
    EXPECT_EQ(log[0].id, (gcs::MsgId{2, 1})) << "member " << m;
    EXPECT_EQ(log[1].id, (gcs::MsgId{1, 1})) << "member " << m;
  }
}

// Token loss *mid-batch*: a holder with a four-message backlog and
// max_batch = 2 emits two stamp announcements in one hold; the first lands
// everywhere, then the second AND the token hand-off vanish. Recovery (a
// regeneration round seeded by the old holder's next_global, then the
// stamp-NACK path for the orphaned second chunk) must neither re-stamp a
// global from the lost chunk nor skip one.
TEST(TokenRing, TokenLossMidBatchNeverRestampsOrSkips) {
  TokenRig rig(3, /*max_batch=*/2);

  // Kill the initial token: member 1 (idle holder) forwards on the first
  // insert and the hand-off vanishes. Member 2's messages then pile up
  // unstamped while the ring is dead.
  rig.drop_from = 1;
  rig.multicast(2, 1);
  rig.drop_from = sim::kInvalidHost;
  rig.multicast(2, 2);
  rig.multicast(2, 3);
  rig.multicast(2, 4);
  for (gcs::MemberId m : rig.view.members)
    ASSERT_TRUE(rig.node(m).delivered.empty());

  // Silence past the loss timeout: member 1 regenerates (token id 2) and,
  // with nothing of its own to stamp, idles with the replacement token.
  rig.now += 2'000'000;
  rig.tick();
  ASSERT_FALSE(rig.node(1).eng.regen_pending());
  ASSERT_TRUE(rig.node(1).eng.holding_token());
  ASSERT_TRUE(rig.timers.count(1));

  // Hand the token to member 2, which stamps its backlog of four as two
  // announcements of two. The first chunk is delivered, then the ring goes
  // dark: the second chunk and the onward token both vanish.
  rig.drop_from = 2;
  rig.pass_first = 1;
  rig.route(1, rig.node(1).eng.on_forward_timer(rig.now));
  rig.drop_from = sim::kInvalidHost;
  rig.pass_first = 0;

  EXPECT_EQ(rig.count_sent(kSubStamps, true), 2u)
      << "a four-message hold at max_batch 2 must announce in two chunks";
  // The holder delivered its whole batch; the peers only the first chunk.
  ASSERT_EQ(rig.node(2).eng.delivered_global(), 4u);
  ASSERT_EQ(rig.node(2).eng.next_global(), 5u);
  for (gcs::MemberId m : {gcs::MemberId{1}, gcs::MemberId{3}}) {
    ASSERT_EQ(rig.node(m).delivered.size(), 2u) << "member " << m;
    ASSERT_EQ(rig.node(m).eng.delivered_global(), 2u) << "member " << m;
  }

  // Second regeneration round. The old holder's reply must seed next_global
  // past its orphaned chunk, so the new token can never re-stamp globals 3-4
  // under a different assignment.
  rig.now += 2'000'000;
  rig.tick();
  EXPECT_FALSE(rig.node(1).eng.regen_pending());
  EXPECT_EQ(rig.node(1).eng.next_global(), 5u)
      << "regeneration re-used a global stamped in the lost chunk";

  // Circulate the replacement token one lap (idle holders defer; fire their
  // forward timers by hand) so every member learns next_global = 5 and sees
  // it is stalled behind the global-3 gap.
  ASSERT_TRUE(rig.node(1).eng.holding_token());
  rig.route(1, rig.node(1).eng.on_forward_timer(rig.now));
  rig.route(2, rig.node(2).eng.on_forward_timer(rig.now));
  EXPECT_EQ(rig.node(3).eng.next_global(), 5u);

  // The peers stall behind the gap; the NACK path (one tick of grace, then
  // rate-limited NACKs) recovers the orphaned chunk from the old holder's
  // stamp log.
  rig.tick();
  rig.tick();
  rig.tick();

  // No skip, no re-stamp: every member delivered exactly seq 1..4 from
  // member 2, in stamp order, and agrees on where the sequence ends.
  for (gcs::MemberId m : rig.view.members) {
    const auto& log = rig.node(m).delivered;
    ASSERT_EQ(log.size(), 4u) << "member " << m;
    for (uint64_t i = 0; i < 4; ++i)
      EXPECT_EQ(log[i].id, (gcs::MsgId{2, i + 1})) << "member " << m;
    EXPECT_EQ(rig.node(m).eng.delivered_global(), 4u) << "member " << m;
    EXPECT_EQ(rig.node(m).eng.next_global(), 5u) << "member " << m;
  }
}

TEST(TokenRing, LostTokenRegeneratesAndDeliveryResumes) {
  GcsHarness h(3, 5, use_engine(gcs::OrderingMode::kTokenRing));
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // A working ring first.
  h.members[0]->multicast(h.payload_of(1));
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 1) return false;
    return true;
  }));
  uint64_t id_before = max_token_id(h);

  // Kill every packet long enough for the in-flight token to vanish, with
  // traffic queued behind the outage.
  h.net.mutable_config().loss_rate = 1.0;
  h.members[1]->multicast(h.payload_of(2));
  h.sim.run_for(sim::msec(150));
  h.net.mutable_config().loss_rate = 0.0;

  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 2) return false;
    return true;
  })) << "delivery must resume after the token is regenerated";
  EXPECT_GT(max_token_id(h), id_before)
      << "recovery must come from a regenerated (higher-id) token";
  for (const auto& log : h.logs) EXPECT_TRUE(GcsHarness::fifo_clean(log.delivered));
}

TEST(TokenRing, HolderCrashSurvivedByViewChange) {
  GcsHarness h(3, 11, use_engine(gcs::OrderingMode::kTokenRing));
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  for (int i = 0; i < 3; ++i)
    h.members[static_cast<size_t>(i)]->multicast(h.payload_of(i));

  // Catch the token at a member and crash exactly that member.
  int holder = -1;
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return (holder = holder_index(h)) >= 0; }));
  h.net.crash_host(h.hosts[static_cast<size_t>(holder)]);
  ASSERT_TRUE(h.run_until_converged(2));

  // The reformed ring still orders fresh traffic.
  size_t other = holder == 0 ? 1 : 0;
  h.members[other]->multicast(h.payload_of(99));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    for (size_t i = 0; i < h.members.size(); ++i) {
      if (static_cast<int>(i) == holder) continue;
      const auto& log = h.logs[i].delivered;
      if (log.empty() || log.back().payload != h.payload_of(99)) return false;
    }
    return true;
  })) << "the ring must re-form and keep ordering after the holder dies";
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (static_cast<int>(i) == holder) continue;
    for (size_t j = i + 1; j < h.members.size(); ++j) {
      if (static_cast<int>(j) == holder) continue;
      EXPECT_TRUE(
          GcsHarness::prefix_consistent(h.logs[i].delivered, h.logs[j].delivered));
    }
    EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[i].delivered));
  }
}

}  // namespace
