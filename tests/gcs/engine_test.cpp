// Ordering-engine coverage: the all-ack and token-ring engines must be
// observationally equivalent (same virtual-synchrony guarantees under the
// same seeded traffic and view changes), and the token ring must survive
// its own failure modes -- a lost token and a crashed token holder.
#include <gtest/gtest.h>

#include <set>

#include "gcs/engine_token.h"
#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;

std::function<void(gcs::GroupConfig&)> use_engine(gcs::OrderingMode mode) {
  return [mode](gcs::GroupConfig& cfg) { cfg.ordering = mode; };
}

/// Index of the member currently holding the token, or -1 (in flight).
int holder_index(const GcsHarness& h) {
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (!h.net.host(h.hosts[i]).up()) continue;
    const gcs::OrderingEngine& e = h.members[i]->engine();
    if (e.mode() != gcs::OrderingMode::kTokenRing) continue;
    if (static_cast<const gcs::TokenRingEngine&>(e).holding_token())
      return static_cast<int>(i);
  }
  return -1;
}

uint64_t max_token_id(const GcsHarness& h) {
  uint64_t id = 0;
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (!h.net.host(h.hosts[i]).up()) continue;
    const gcs::OrderingEngine& e = h.members[i]->engine();
    if (e.mode() != gcs::OrderingMode::kTokenRing) continue;
    id = std::max(id,
                  static_cast<const gcs::TokenRingEngine&>(e).token_id_seen());
  }
  return id;
}

/// One deterministic campaign: n members, six rounds of traffic from every
/// live member with 10% loss, the last member crashing after round 3.
/// Returns the per-member delivery logs after the ring quiesces.
struct CampaignResult {
  std::vector<std::vector<gcs::Delivered>> logs;
  std::set<std::pair<gcs::MemberId, uint64_t>> survivor_sent;
  bool ok = false;
};

CampaignResult run_campaign(gcs::OrderingMode mode, int n, uint64_t seed) {
  CampaignResult out;
  GcsHarness h(n, seed, use_engine(mode));
  h.join_all();
  if (!h.run_until_converged(static_cast<size_t>(n))) return out;

  h.net.mutable_config().loss_rate = 0.10;
  int sent = 0;
  std::vector<uint64_t> sends(static_cast<size_t>(n), 0);  // k-th send = seq k
  for (int round = 0; round < 6; ++round) {
    for (int m = 0; m < n; ++m) {
      size_t idx = static_cast<size_t>(m);
      if (!h.net.host(h.hosts[idx]).up()) continue;
      h.members[idx]->multicast(h.payload_of(sent++));
      if (m + 1 < n)  // every survivor's full traffic must come through
        out.survivor_sent.emplace(h.members[idx]->id(), ++sends[idx]);
      h.sim.run_for(sim::msec(static_cast<int64_t>((seed + m) % 7)));
    }
    if (round == 3) {
      h.net.mutable_config().loss_rate = 0.0;
      h.net.crash_host(h.hosts.back());
    }
  }
  h.net.mutable_config().loss_rate = 0.0;

  if (!h.run_until_converged(static_cast<size_t>(n - 1))) return out;
  // Quiesce: every survivor has delivered every survivor-sent message.
  out.ok = testutil::run_until(h.sim, [&] {
    for (int m = 0; m + 1 < n; ++m) {
      std::set<std::pair<gcs::MemberId, uint64_t>> got;
      for (const gcs::Delivered& d : h.logs[static_cast<size_t>(m)].delivered)
        got.emplace(d.sender, d.seq);
      for (const auto& id : out.survivor_sent)
        if (got.find(id) == got.end()) return false;
    }
    return true;
  });
  for (const auto& log : h.logs) out.logs.push_back(log.delivered);
  return out;
}

class EngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalence, SameGuaranteesUnderSeededFaults) {
  const uint64_t seed = GetParam();
  const int n = 4;
  CampaignResult allack = run_campaign(gcs::OrderingMode::kAllAck, n, seed);
  CampaignResult token = run_campaign(gcs::OrderingMode::kTokenRing, n, seed);
  ASSERT_TRUE(allack.ok) << "all-ack campaign did not quiesce";
  ASSERT_TRUE(token.ok) << "token campaign did not quiesce";

  for (const CampaignResult* r : {&allack, &token}) {
    // Identical delivery order at every member: pairwise prefix agreement...
    for (size_t a = 0; a + 1 < r->logs.size() - 1; ++a)
      for (size_t b = a + 1; b + 1 < r->logs.size(); ++b)
        EXPECT_TRUE(GcsHarness::prefix_consistent(r->logs[a], r->logs[b]))
            << "members " << a << " and " << b << " disagree on the order";
    // ...and per-sender integrity (no gaps, no duplicates).
    for (const auto& log : r->logs)
      EXPECT_TRUE(GcsHarness::fifo_clean(log));
  }

  // Cross-engine: both engines deliver the same survivor traffic (messages
  // in flight from the crashed member may legitimately differ).
  auto survivor_set = [&](const CampaignResult& r, size_t member) {
    std::set<std::pair<gcs::MemberId, uint64_t>> got;
    for (const gcs::Delivered& d : r.logs[member])
      if (r.survivor_sent.count({d.sender, d.seq}) != 0)
        got.emplace(d.sender, d.seq);
    return got;
  };
  for (size_t m = 0; m + 1 < static_cast<size_t>(n); ++m)
    EXPECT_EQ(survivor_set(allack, m), survivor_set(token, m))
        << "engines disagree on the delivered survivor traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalence,
                         ::testing::Values(7u, 21u, 42u));

TEST(TokenRing, LostTokenRegeneratesAndDeliveryResumes) {
  GcsHarness h(3, 5, use_engine(gcs::OrderingMode::kTokenRing));
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // A working ring first.
  h.members[0]->multicast(h.payload_of(1));
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 1) return false;
    return true;
  }));
  uint64_t id_before = max_token_id(h);

  // Kill every packet long enough for the in-flight token to vanish, with
  // traffic queued behind the outage.
  h.net.mutable_config().loss_rate = 1.0;
  h.members[1]->multicast(h.payload_of(2));
  h.sim.run_for(sim::msec(150));
  h.net.mutable_config().loss_rate = 0.0;

  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 2) return false;
    return true;
  })) << "delivery must resume after the token is regenerated";
  EXPECT_GT(max_token_id(h), id_before)
      << "recovery must come from a regenerated (higher-id) token";
  for (const auto& log : h.logs) EXPECT_TRUE(GcsHarness::fifo_clean(log.delivered));
}

TEST(TokenRing, HolderCrashSurvivedByViewChange) {
  GcsHarness h(3, 11, use_engine(gcs::OrderingMode::kTokenRing));
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  for (int i = 0; i < 3; ++i)
    h.members[static_cast<size_t>(i)]->multicast(h.payload_of(i));

  // Catch the token at a member and crash exactly that member.
  int holder = -1;
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return (holder = holder_index(h)) >= 0; }));
  h.net.crash_host(h.hosts[static_cast<size_t>(holder)]);
  ASSERT_TRUE(h.run_until_converged(2));

  // The reformed ring still orders fresh traffic.
  size_t other = holder == 0 ? 1 : 0;
  h.members[other]->multicast(h.payload_of(99));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    for (size_t i = 0; i < h.members.size(); ++i) {
      if (static_cast<int>(i) == holder) continue;
      const auto& log = h.logs[i].delivered;
      if (log.empty() || log.back().payload != h.payload_of(99)) return false;
    }
    return true;
  })) << "the ring must re-form and keep ordering after the holder dies";
  for (size_t i = 0; i < h.members.size(); ++i) {
    if (static_cast<int>(i) == holder) continue;
    for (size_t j = i + 1; j < h.members.size(); ++j) {
      if (static_cast<int>(j) == holder) continue;
      EXPECT_TRUE(
          GcsHarness::prefix_consistent(h.logs[i].delivered, h.logs[j].delivered));
    }
    EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[i].delivered));
  }
}

}  // namespace
