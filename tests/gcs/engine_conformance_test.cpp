// Engine conformance suite: every (engine x batch x window) combination is
// driven through the same randomized fault schedule -- lossy steady-state
// traffic, a burst cut short by a crash (a view change with full batches in
// flight), a partition of one member while the majority keeps ordering,
// then a heal and a final clean round -- and must uphold the same contract:
//
//   C1 (total order): any two members deliver the messages they have in
//      common in the same relative order. Messages are identified by
//      payload, which is unique per send -- sequence numbers are not a key
//      across a partition-merge, where a rejoining member's stream restarts.
//   C2 (no duplicates): no member delivers the same payload twice.
//   C3 (watermark monotonicity): per sender, delivered sequence numbers
//      only move forward, except for an explicit restart back to 1 when the
//      sender rejoined with a fresh stream.
//   C4 (completeness): every message sent by the continuously-majority
//      members reaches all of them -- nothing is stranded in a window queue
//      or a half-announced batch by the faults.
//   C5 (reference equivalence): at the quiesced checkpoint after the crash,
//      the delivered message set equals the unbatched all-ack reference
//      run's set for the same seed. Batching and windowing may change when
//      things deliver, never what.
//
// Cross-engine logs cannot be compared position-by-position (all-ack orders
// by Lamport clock, the token ring by stamp), and the merge's transient
// views make even same-engine full-log equality seed-dependent, so C1/C5
// are exactly the strongest checks that are invariant across every
// combination -- the same standard as the PR 6 engine-equivalence test.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;

struct ConformParam {
  gcs::OrderingMode mode;
  uint32_t batch;
  uint32_t window;
  uint64_t seed;
  friend std::ostream& operator<<(std::ostream& os, const ConformParam& p) {
    return os << gcs::to_string(p.mode) << "_b" << p.batch << "_w" << p.window
              << "_seed" << p.seed;
  }
};

constexpr int kMembers = 5;

/// One full drive of the shared fault schedule. Hosts 0..2 stay in the
/// majority throughout; host 3 is partitioned away and healed; host 4
/// crashes mid-burst and never returns.
/// Payloads in this suite all come from payload_of(counter), so the unique
/// counter is recoverable from the first two bytes and serves as the message
/// identity (sim::Payload itself is not ordered).
int payload_key(const sim::Payload& p) {
  return static_cast<int>(p[0]) | (static_cast<int>(p[1]) << 8);
}

struct DriveResult {
  std::vector<std::vector<gcs::Delivered>> logs;   // per member, full run
  std::vector<std::vector<int>> sent;              // per member, send order
  std::vector<sim::HostId> hosts;                  // member index -> host id
  std::set<int> checkpoint;  // member 0's delivered set, post-crash
  bool converged = false;
  bool drained_crash = false;  // every member caught up at the checkpoint
  bool drained_final = false;  // majority caught up after the heal
  uint64_t window_stalls = 0;  // summed over members
};

DriveResult run_drive(gcs::OrderingMode mode, uint32_t batch, uint32_t window,
                      uint64_t seed) {
  DriveResult res;
  auto tweak = [&](gcs::GroupConfig& cfg) {
    cfg.ordering = mode;
    cfg.order_batch = batch;
    cfg.inflight_window = window;
    cfg.require_majority = true;
  };
  GcsHarness h(kMembers, seed, tweak);
  h.join_all();
  if (!h.run_until_converged(kMembers)) return res;

  res.sent.resize(kMembers);
  int counter = 0;
  auto send = [&](int m) {
    res.sent[static_cast<size_t>(m)].push_back(counter);
    h.members[static_cast<size_t>(m)]->multicast(h.payload_of(counter++));
  };
  // True when `member`'s log contains every payload `sender` sent so far.
  auto caught_up = [&](int member, int sender) {
    std::set<int> have;
    for (const gcs::Delivered& d : h.logs[static_cast<size_t>(member)].delivered)
      have.insert(payload_key(d.payload));
    for (int key : res.sent[static_cast<size_t>(sender)])
      if (!have.count(key)) return false;
    return true;
  };

  // Phase A: lossy steady state. Everyone sends, 10% of packets vanish.
  h.net.mutable_config().loss_rate = 0.10;
  for (int round = 0; round < 4; ++round) {
    for (int m = 0; m < kMembers; ++m) {
      send(m);
      h.sim.run_for(sim::msec(static_cast<int64_t>((seed + m) % 5)));
    }
  }

  // Phase B: a burst from everyone with no drain in between -- the batched
  // paths have full announcements/ack-cuts in flight -- then host 4 dies
  // mid-batch and the view change must resolve the remnants identically.
  for (int m = 0; m < kMembers; ++m)
    for (int k = 0; k < 4; ++k) send(m);
  h.net.crash_host(h.hosts[kMembers - 1]);
  h.net.mutable_config().loss_rate = 0.0;
  if (!h.run_until_converged(kMembers - 1, sim::seconds(120))) return res;

  // Checkpoint: with the view stable at {0,1,2,3}, every survivor must
  // catch up on every survivor's sends (NACK recovery + flush), after which
  // the delivered sets are directly comparable across configurations.
  res.drained_crash = testutil::run_until(
      h.sim,
      [&] {
        for (int m = 0; m < kMembers - 1; ++m)
          for (int s = 0; s < kMembers - 1; ++s)
            if (!caught_up(m, s)) return false;
        return true;
      },
      sim::seconds(60));
  // Sender 4 is excluded: how much of the crashed member's in-flight tail
  // survives depends on packet timing, which the knobs legitimately change.
  // Within one run it is identical at every member -- C1 covers that.
  for (const gcs::Delivered& d : h.logs[0].delivered)
    if (d.sender != h.hosts[kMembers - 1])
      res.checkpoint.insert(payload_key(d.payload));

  // Phase C: partition host 3 into a minority of one (require_majority
  // blocks it); the majority keeps ordering traffic meanwhile.
  h.net.set_partition(h.hosts[3], 1);
  testutil::run_until(
      h.sim, [&] { return h.members[0]->view().size() == kMembers - 2; },
      sim::seconds(60));
  if (h.members[0]->view().size() != kMembers - 2) return res;
  for (int round = 0; round < 2; ++round) {
    for (int m = 0; m < 3; ++m) {
      send(m);
      h.sim.run_for(sim::msec(static_cast<int64_t>((seed + m) % 3)));
    }
  }

  // Heal: the partitioned member merges back (possibly through transient
  // views -- suspicion races during a merge are legitimate), then a final
  // clean round from the continuous majority must reach all of it.
  h.net.clear_partitions();
  if (!h.run_until_converged(kMembers - 1, sim::seconds(120))) return res;
  for (int m = 0; m < 3; ++m) send(m);
  res.drained_final = testutil::run_until(
      h.sim,
      [&] {
        for (int m = 0; m < 3; ++m)
          for (int s = 0; s < 3; ++s)
            if (!caught_up(m, s)) return false;
        return true;
      },
      sim::seconds(60));
  h.sim.run_for(sim::seconds(5));  // quiesce

  res.converged = true;
  res.hosts = h.hosts;
  res.logs.resize(kMembers);
  for (int m = 0; m < kMembers; ++m) {
    res.logs[static_cast<size_t>(m)] = h.logs[static_cast<size_t>(m)].delivered;
    res.window_stalls +=
        h.members[static_cast<size_t>(m)]->stats().window_stalls;
  }
  return res;
}

/// The per-seed reference run: all-ack, unbatched, unwindowed -- the PR 6
/// behaviour every combination must be checkpoint-equivalent to.
const DriveResult& reference_for(uint64_t seed) {
  static std::map<uint64_t, DriveResult>* cache =
      new std::map<uint64_t, DriveResult>();
  auto it = cache->find(seed);
  if (it == cache->end())
    it = cache->emplace(seed, run_drive(gcs::OrderingMode::kAllAck, 1, 1, seed))
             .first;
  return it->second;
}

class EngineConformanceTest : public ::testing::TestWithParam<ConformParam> {};

TEST_P(EngineConformanceTest, FaultScheduleUpholdsOrderingContract) {
  const ConformParam p = GetParam();
  const DriveResult res = run_drive(p.mode, p.batch, p.window, p.seed);
  ASSERT_TRUE(res.converged) << "drive did not reach the final view";
  ASSERT_TRUE(res.drained_crash) << "post-crash checkpoint never drained";
  ASSERT_TRUE(res.drained_final) << "post-heal round never delivered";

  // C1: common messages in the same relative order, every surviving pair.
  for (size_t a = 0; a + 1 < static_cast<size_t>(kMembers); ++a) {
    for (size_t b = a + 1; b + 1 < static_cast<size_t>(kMembers); ++b) {
      std::map<int, size_t> pos_a;
      for (size_t i = 0; i < res.logs[a].size(); ++i)
        pos_a.emplace(payload_key(res.logs[a][i].payload), i);
      size_t last = 0;
      bool first = true;
      for (const gcs::Delivered& d : res.logs[b]) {
        auto it = pos_a.find(payload_key(d.payload));
        if (it == pos_a.end()) continue;
        if (!first) {
          EXPECT_GT(it->second, last)
              << "members " << a << "," << b << " disagree on order";
        }
        last = it->second;
        first = false;
      }
    }
  }

  for (size_t m = 0; m + 1 < static_cast<size_t>(kMembers); ++m) {
    // C2: no payload delivered twice.
    std::set<int> seen;
    for (const gcs::Delivered& d : res.logs[m])
      EXPECT_TRUE(seen.insert(payload_key(d.payload)).second)
          << "member " << m << " delivered a duplicate";
    // C3: per-sender watermarks only move forward (or restart at 1 when the
    // sender rejoined with a fresh stream after the merge).
    std::map<gcs::MemberId, uint64_t> mark;
    for (const gcs::Delivered& d : res.logs[m]) {
      uint64_t& last = mark[d.sender];
      EXPECT_TRUE(d.seq > last || d.seq == 1)
          << "member " << m << ": sender " << d.sender << " went " << last
          << " -> " << d.seq;
      last = d.seq;
    }
  }

  // C4: everything the continuous majority (members 0..2) sent is delivered
  // at all of 0..2.
  for (size_t m = 0; m < 3; ++m) {
    std::set<int> have;
    for (const gcs::Delivered& d : res.logs[m])
      have.insert(payload_key(d.payload));
    for (size_t s = 0; s < 3; ++s)
      for (int sent : res.sent[s])
        EXPECT_TRUE(have.count(sent))
            << "member " << m << " missing a send from member " << s;
  }

  // C5: checkpoint set equality against the unbatched all-ack reference.
  const DriveResult& ref = reference_for(p.seed);
  ASSERT_TRUE(ref.converged) << "reference drive did not converge";
  ASSERT_TRUE(ref.drained_crash);
  EXPECT_EQ(res.checkpoint, ref.checkpoint);

  // window=1 with this traffic pattern must exercise the stall path --
  // guards against the knob silently not reaching the members.
  if (p.window == 1) {
    EXPECT_GT(res.window_stalls, 0u);
  }
}

std::vector<ConformParam> all_combos() {
  std::vector<ConformParam> out;
  for (gcs::OrderingMode mode :
       {gcs::OrderingMode::kAllAck, gcs::OrderingMode::kTokenRing})
    for (uint32_t batch : {1u, 8u, 64u})
      for (uint32_t window : {1u, 16u})
        for (uint64_t seed : {21u, 22u, 23u})
          out.push_back({mode, batch, window, seed});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, EngineConformanceTest,
                         ::testing::ValuesIn(all_combos()),
                         [](const ::testing::TestParamInfo<ConformParam>& i) {
                           std::ostringstream os;
                           os << i.param;
                           return os.str();
                         });

}  // namespace
