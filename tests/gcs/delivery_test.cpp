#include <gtest/gtest.h>

#include "gcs/gcs_harness.h"

namespace {

using gcs::Delivery;
using gcstest::GcsHarness;

TEST(Delivery, AgreedDeliversAtAllMembers) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.members[0]->multicast(h.payload_of(1));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    return h.logs[0].delivered.size() == 1 && h.logs[1].delivered.size() == 1 &&
           h.logs[2].delivered.size() == 1;
  }));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(h.logs[static_cast<size_t>(i)].delivered[0].payload,
              h.payload_of(1));
    EXPECT_EQ(h.logs[static_cast<size_t>(i)].delivered[0].sender, h.hosts[0]);
  }
}

TEST(Delivery, ConcurrentSendersSameTotalOrderEverywhere) {
  GcsHarness h(4);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(4));
  // Every member sends 5 messages at once.
  for (int round = 0; round < 5; ++round) {
    for (size_t i = 0; i < 4; ++i)
      h.members[i]->multicast(h.payload_of(static_cast<int>(i) * 100 + round));
  }
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 20) return false;
    return true;
  }));
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_TRUE(GcsHarness::prefix_consistent(h.logs[0].delivered,
                                              h.logs[i].delivered))
        << "member " << i << " diverged";
  }
  for (const auto& log : h.logs) EXPECT_TRUE(GcsHarness::fifo_clean(log.delivered));
}

TEST(Delivery, SenderOrderPreservedFifo) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  for (int i = 0; i < 10; ++i)
    h.members[0]->multicast(h.payload_of(i), Delivery::kFifo);
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].delivered.size() == 10; }));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(h.logs[1].delivered[static_cast<size_t>(i)].payload,
              h.payload_of(i));
}

TEST(Delivery, SafeLevelDelivers) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.members[1]->multicast(h.payload_of(9), Delivery::kSafe);
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    return h.logs[0].delivered.size() == 1 && h.logs[1].delivered.size() == 1 &&
           h.logs[2].delivered.size() == 1;
  }));
  EXPECT_EQ(h.logs[0].delivered[0].level, Delivery::kSafe);
}

TEST(Delivery, MixedLevelsKeepTotalOrderAmongTotallyOrderedMessages) {
  // AGREED and SAFE messages share one total order; FIFO traffic may
  // interleave differently per member but must stay per-sender ordered.
  GcsHarness h(3, 21);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  for (int i = 0; i < 4; ++i) {
    h.members[0]->multicast(h.payload_of(i), Delivery::kAgreed);
    h.members[1]->multicast(h.payload_of(100 + i), Delivery::kSafe);
    h.members[2]->multicast(h.payload_of(200 + i), Delivery::kFifo);
  }
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 12) return false;
    return true;
  }));
  // Extract the totally-ordered subsequence at each member: identical.
  auto total_sub = [](const std::vector<gcs::Delivered>& log) {
    std::vector<std::pair<gcs::MemberId, uint64_t>> out;
    for (const auto& d : log)
      if (d.level != Delivery::kFifo) out.emplace_back(d.sender, d.seq);
    return out;
  };
  auto ref = total_sub(h.logs[0].delivered);
  EXPECT_EQ(ref.size(), 8u);
  for (size_t i = 1; i < 3; ++i)
    EXPECT_EQ(total_sub(h.logs[i].delivered), ref) << "member " << i;
  for (const auto& log : h.logs)
    EXPECT_TRUE(GcsHarness::fifo_clean(log.delivered));
}

TEST(Delivery, CausalRespectsHappenedBefore) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.members[0]->multicast(h.payload_of(1), Delivery::kCausal);
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].delivered.size() == 1; }));
  // Member 1 reacts to the delivery (causal dependency).
  h.members[1]->multicast(h.payload_of(2), Delivery::kCausal);
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    return h.logs[0].delivered.size() == 2 && h.logs[2].delivered.size() == 2;
  }));
  for (const auto& log : {h.logs[0], h.logs[2]}) {
    EXPECT_EQ(log.delivered[0].payload, h.payload_of(1));
    EXPECT_EQ(log.delivered[1].payload, h.payload_of(2));
  }
}

TEST(Delivery, LossRecoveredByNack) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  // Drop everything briefly around the send, then heal.
  h.net.mutable_config().loss_rate = 1.0;
  h.members[0]->multicast(h.payload_of(3));
  h.sim.run_for(sim::msec(30));
  h.net.mutable_config().loss_rate = 0.0;
  EXPECT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].delivered.size() == 1; }))
      << "retransmission must recover the lost frame";
  EXPECT_EQ(h.logs[1].delivered[0].payload, h.payload_of(3));
}

TEST(Delivery, RandomLossStillDeliversEverythingInOrder) {
  GcsHarness h(3, 99);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.net.mutable_config().loss_rate = 0.10;
  for (int i = 0; i < 30; ++i)
    h.members[static_cast<size_t>(i % 3)]->multicast(h.payload_of(i));
  h.net.mutable_config().loss_rate = 0.0;  // stop losing after the burst
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    for (const auto& log : h.logs)
      if (log.delivered.size() != 30) return false;
    return true;
  }, sim::seconds(120)));
  for (size_t i = 1; i < 3; ++i)
    EXPECT_TRUE(GcsHarness::prefix_consistent(h.logs[0].delivered,
                                              h.logs[i].delivered));
}

TEST(Delivery, MessagesDuringFlushArriveInNextView) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // Crash member 2, then immediately send while the view change is still
  // in flight: virtual synchrony buffers the send.
  h.net.crash_host(h.hosts[2]);
  h.sim.run_for(sim::msec(300));  // inside suspicion/flush window
  h.members[0]->multicast(h.payload_of(42));
  ASSERT_TRUE(h.run_until_converged(2));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    return !h.logs[1].delivered.empty() &&
           h.logs[1].delivered.back().payload == h.payload_of(42);
  }));
}

TEST(Delivery, SenderFailureAfterPartialReceiptStillAgrees) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // Sender 2 multicasts, then dies immediately. Depending on timing the
  // message reached a subset; the flush must make delivery uniform.
  h.members[2]->multicast(h.payload_of(5));
  h.sim.run_for(sim::msec(1));
  h.net.crash_host(h.hosts[2]);
  ASSERT_TRUE(h.run_until_converged(2));
  h.sim.run_for(sim::seconds(2));
  EXPECT_EQ(h.logs[0].delivered.size(), h.logs[1].delivered.size())
      << "survivors must agree on whether the dying sender's message counts";
  EXPECT_TRUE(
      GcsHarness::prefix_consistent(h.logs[0].delivered, h.logs[1].delivered));
}

TEST(Delivery, ThroughputBurstAllDelivered) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  for (int i = 0; i < 200; ++i) h.members[0]->multicast(h.payload_of(i));
  ASSERT_TRUE(testutil::run_until(h.sim, [&] {
    return h.logs[0].delivered.size() == 200 &&
           h.logs[1].delivered.size() == 200;
  }, sim::seconds(120)));
  EXPECT_TRUE(GcsHarness::fifo_clean(h.logs[1].delivered));
}

TEST(Delivery, MulticastWhileDownThrows) {
  GcsHarness h(1);
  EXPECT_THROW(h.members[0]->multicast(h.payload_of(1)), std::logic_error);
}

TEST(Delivery, StatsCountersAdvance) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  h.members[0]->multicast(h.payload_of(1));
  testutil::run_until(h.sim, [&] { return h.logs[1].delivered.size() == 1; });
  EXPECT_EQ(h.members[0]->stats().data_sent, 1u);
  EXPECT_EQ(h.members[1]->stats().data_received, 1u);
  EXPECT_GE(h.members[0]->stats().cuts_received, 1u);
  EXPECT_EQ(h.members[1]->stats().delivered, 1u);
}

}  // namespace
