#include <gtest/gtest.h>

#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;
using State = gcs::GroupMember::State;

TEST(Membership, SingletonFoundsAlone) {
  GcsHarness h(1);
  h.join_all();
  EXPECT_TRUE(h.run_until_converged(1));
  EXPECT_EQ(h.members[0]->view().members, std::vector<gcs::MemberId>{h.hosts[0]});
  ASSERT_FALSE(h.logs[0].views.empty());
  EXPECT_EQ(h.logs[0].views[0].size(), 1u);
}

TEST(Membership, ColdStartFormsFullView) {
  for (int n = 2; n <= 4; ++n) {
    GcsHarness h(n, static_cast<uint64_t>(n));
    h.join_all();
    EXPECT_TRUE(h.run_until_converged(static_cast<size_t>(n))) << n << " members";
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(h.members[static_cast<size_t>(i)]->view().size(),
                static_cast<size_t>(n));
    }
  }
}

TEST(Membership, StaggeredJoin) {
  GcsHarness h(3);
  h.members[0]->join();
  ASSERT_TRUE(h.run_until_converged(1));
  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));
  h.members[2]->join();
  ASSERT_TRUE(h.run_until_converged(3));
  // Every member saw monotonically growing epochs.
  for (const auto& log : {h.logs[0], h.logs[1], h.logs[2]}) {
    for (size_t i = 1; i < log.views.size(); ++i)
      EXPECT_GT(log.views[i].id.epoch, log.views[i - 1].id.epoch);
  }
}

TEST(Membership, FailureShrinksView) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.net.crash_host(h.hosts[2]);
  EXPECT_TRUE(h.run_until_converged(2));
  EXPECT_FALSE(h.members[0]->view().contains(h.hosts[2]));
}

TEST(Membership, SimultaneousFailuresHandled) {
  GcsHarness h(4);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(4));
  // "multiple simultaneous failures" (Section 5)
  h.net.crash_host(h.hosts[2]);
  h.net.crash_host(h.hosts[3]);
  EXPECT_TRUE(h.run_until_converged(2));
}

TEST(Membership, CoordinatorFailureMidFlushRecovers) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // Crash the lowest-id member (the coordinator) and another member at
  // once: the remaining member must still form its view even though the
  // first flush attempt it participates in may target the dead coordinator.
  h.net.crash_host(h.hosts[0]);
  EXPECT_TRUE(h.run_until_converged(2, sim::seconds(60)));
  // Now crash the new coordinator too.
  h.net.crash_host(h.hosts[1]);
  EXPECT_TRUE(h.run_until_converged(1, sim::seconds(60)));
  EXPECT_EQ(h.members[2]->view().size(), 1u);
}

TEST(Membership, GracefulLeaveExcludesQuickly) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  h.members[1]->leave();
  EXPECT_EQ(h.members[1]->state(), State::kDown);
  EXPECT_TRUE(h.run_until_converged(2));
}

TEST(Membership, LastSurvivorKeepsServing) {
  GcsHarness h(4);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(4));
  h.net.crash_host(h.hosts[1]);
  h.net.crash_host(h.hosts[2]);
  h.net.crash_host(h.hosts[3]);
  EXPECT_TRUE(h.run_until_converged(1));
  // The survivor can still multicast and deliver to itself.
  h.members[0]->multicast(h.payload_of(7));
  testutil::run_until(h.sim, [&] { return !h.logs[0].delivered.empty(); });
  ASSERT_EQ(h.logs[0].delivered.size(), 1u);
}

TEST(Membership, RejoinAfterCrashGetsFreshStream) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  h.members[1]->multicast(h.payload_of(1));
  testutil::run_until(h.sim, [&] { return h.logs[0].delivered.size() == 1; });

  h.net.crash_host(h.hosts[1]);
  ASSERT_TRUE(h.run_until_converged(1));
  h.net.restart_host(h.hosts[1]);
  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));

  // The restarted member's sequence numbers restarted; its new message must
  // still deliver everywhere.
  h.members[1]->multicast(h.payload_of(2));
  EXPECT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[0].delivered.size() == 2; }));
}

TEST(Membership, PartitionFormsComponentsAndMerges) {
  GcsHarness h(4);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(4));
  // Cable pull: hosts 2,3 into island 1.
  h.net.set_partition(h.hosts[2], 1);
  h.net.set_partition(h.hosts[3], 1);
  // Both components install their own 2-member views (partitionable
  // membership, like Transis).
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    return h.members[0]->view().size() == 2 &&
           h.members[2]->view().size() == 2 &&
           h.members[0]->view().contains(h.hosts[1]) &&
           h.members[2]->view().contains(h.hosts[3]);
  }));
  // Heal: the merge beacons re-form the full view.
  h.net.clear_partitions();
  EXPECT_TRUE(h.run_until_converged(4, sim::seconds(60)));
}

TEST(Membership, RequireMajorityBlocksMinority) {
  auto tweak = [](gcs::GroupConfig& cfg) { cfg.require_majority = true; };
  GcsHarness h(4, 1, tweak);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(4));
  // Isolate one member: it must NOT form a singleton view.
  h.net.set_partition(h.hosts[3], 1);
  testutil::run_until(h.sim, [&] { return h.members[0]->view().size() == 3; },
                      sim::seconds(30));
  EXPECT_EQ(h.members[0]->view().size(), 3u) << "majority side proceeds";
  EXPECT_NE(h.members[3]->view().size(), 1u)
      << "minority member must not found a singleton view";
}

TEST(Membership, ViewsInstalledCountsTracked) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  EXPECT_GE(h.members[0]->stats().views_installed, 1u);
}

}  // namespace
