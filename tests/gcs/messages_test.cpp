#include "gcs/messages.h"

#include <gtest/gtest.h>

namespace {

using namespace gcs;

Header sample_header() {
  Header h;
  h.from = 3;
  h.lamport = 77;
  h.sent_upto = 12;
  h.received = {{0, 5}, {1, 7}};
  return h;
}

void expect_header_eq(const Header& a, const Header& b) {
  EXPECT_EQ(a.from, b.from);
  EXPECT_EQ(a.lamport, b.lamport);
  EXPECT_EQ(a.sent_upto, b.sent_upto);
  EXPECT_EQ(a.received, b.received);
}

DataMsg sample_msg() {
  DataMsg m;
  m.id = {2, 9};
  m.lamport = 42;
  m.level = Delivery::kSafe;
  m.vclock = {{0, 1}, {2, 8}};
  m.payload = {0xde, 0xad};
  return m;
}

TEST(GcsMessages, DataRoundTrip) {
  DataWire m{sample_header(), sample_msg()};
  sim::Payload buf = encode(m);
  EXPECT_EQ(decode_type(buf), MsgType::kData);
  DataWire back = decode_data(buf);
  expect_header_eq(back.header, m.header);
  EXPECT_EQ(back.msg.id, m.msg.id);
  EXPECT_EQ(back.msg.lamport, m.msg.lamport);
  EXPECT_EQ(back.msg.level, m.msg.level);
  EXPECT_EQ(back.msg.vclock, m.msg.vclock);
  EXPECT_EQ(back.msg.payload, m.msg.payload);
}

TEST(GcsMessages, CutRoundTripBothFlags) {
  for (bool periodic : {false, true}) {
    CutWire m{sample_header(), periodic};
    CutWire back = decode_cut(encode(m));
    expect_header_eq(back.header, m.header);
    EXPECT_EQ(back.periodic, periodic);
    // The dispatcher peeks the periodic flag from the last byte.
    sim::Payload buf = encode(m);
    EXPECT_EQ(buf.back() != 0, periodic);
  }
}

TEST(GcsMessages, NackRoundTrip) {
  NackWire m{sample_header(), {{1, 4}, {2, 7}}};
  NackWire back = decode_nack(encode(m));
  EXPECT_EQ(back.missing.size(), 2u);
  EXPECT_EQ(back.missing[0], (MsgId{1, 4}));
  EXPECT_EQ(back.missing[1], (MsgId{2, 7}));
}

TEST(GcsMessages, RetransmitRoundTrip) {
  RetransmitWire m{sample_header(), {sample_msg(), sample_msg()}};
  RetransmitWire back = decode_retransmit(encode(m));
  ASSERT_EQ(back.msgs.size(), 2u);
  EXPECT_EQ(back.msgs[0].id, sample_msg().id);
}

TEST(GcsMessages, JoinLeaveRoundTrip) {
  JoinReqWire j{sample_header(), 5};
  JoinReqWire jb = decode_join_req(encode(j));
  EXPECT_EQ(jb.incarnation, 5u);
  LeaveWire l{sample_header()};
  LeaveWire lb = decode_leave(encode(l));
  expect_header_eq(lb.header, l.header);
}

TEST(GcsMessages, ViewChangeRoundTrip) {
  VcProposeWire p{sample_header(), {9, 1}, {0, 1, 2}};
  VcProposeWire pb = decode_vc_propose(encode(p));
  EXPECT_EQ(pb.proposed, (ViewId{9, 1}));
  EXPECT_EQ(pb.members, (std::vector<MemberId>{0, 1, 2}));

  VcAckWire a;
  a.header = sample_header();
  a.proposed = {9, 1};
  a.held = {sample_msg()};
  VcAckWire ab = decode_vc_ack(encode(a));
  EXPECT_EQ(ab.proposed, (ViewId{9, 1}));
  ASSERT_EQ(ab.held.size(), 1u);

  VcCommitWire c;
  c.header = sample_header();
  c.new_view.id = {9, 1};
  c.new_view.members = {0, 1, 2};
  c.old_members = {0, 1};
  c.joiners = {2};
  c.union_msgs = {sample_msg()};
  c.seq_baseline = {{0, 3}, {1, 8}, {2, 0}};
  c.state_source = 0;
  VcCommitWire cb = decode_vc_commit(encode(c));
  EXPECT_EQ(cb.new_view.id, c.new_view.id);
  EXPECT_EQ(cb.new_view.members, c.new_view.members);
  EXPECT_EQ(cb.old_members, c.old_members);
  EXPECT_EQ(cb.joiners, c.joiners);
  EXPECT_EQ(cb.seq_baseline, c.seq_baseline);
  EXPECT_EQ(cb.state_source, 0u);
  ASSERT_EQ(cb.union_msgs.size(), 1u);
}

TEST(GcsMessages, StateRoundTrip) {
  StateReqWire req{sample_header(), {4, 2}};
  StateReqWire reqb = decode_state_req(encode(req));
  EXPECT_EQ(reqb.view_id, (ViewId{4, 2}));

  StateWire st{sample_header(), {4, 2}, {1, 2, 3, 4}};
  StateWire stb = decode_state(encode(st));
  EXPECT_EQ(stb.state, (sim::Payload{1, 2, 3, 4}));
}

TEST(GcsMessages, TypeMismatchThrows) {
  DataWire m{sample_header(), sample_msg()};
  sim::Payload buf = encode(m);
  EXPECT_THROW(decode_cut(buf), net::WireError);
  EXPECT_THROW(decode_type(sim::Payload{}), net::WireError);
}

TEST(GcsMessages, TruncationThrows) {
  DataWire m{sample_header(), sample_msg()};
  sim::Payload buf = encode(m);
  buf.resize(buf.size() / 2);
  EXPECT_THROW(decode_data(buf), net::WireError);
}

TEST(GcsTypes, ViewIdOrdering) {
  EXPECT_LT((ViewId{1, 5}), (ViewId{2, 0}));
  EXPECT_LT((ViewId{2, 0}), (ViewId{2, 1}));
  EXPECT_EQ((ViewId{2, 1}), (ViewId{2, 1}));
}

TEST(GcsTypes, ViewContainsAndLowest) {
  View v;
  v.members = {1, 3, 5};
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(2));
  EXPECT_EQ(v.lowest(), 1u);
  EXPECT_EQ(View{}.lowest(), sim::kInvalidHost);
}

TEST(GcsTypes, OrderKeyOrdersByLamportThenSender) {
  DataMsg a = sample_msg();
  a.lamport = 10;
  a.id.sender = 2;
  DataMsg b = sample_msg();
  b.lamport = 10;
  b.id.sender = 1;
  EXPECT_LT(order_key(b), order_key(a));
  b.lamport = 11;
  EXPECT_LT(order_key(a), order_key(b));
}

TEST(GcsTypes, DeliveryToString) {
  EXPECT_EQ(to_string(Delivery::kAgreed), "AGREED");
  EXPECT_EQ(to_string(Delivery::kSafe), "SAFE");
  EXPECT_EQ(to_string(Delivery::kFifo), "FIFO");
  EXPECT_EQ(to_string(Delivery::kCausal), "CAUSAL");
}

}  // namespace
