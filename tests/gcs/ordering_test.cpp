#include "gcs/ordering.h"

#include <gtest/gtest.h>

namespace {

using gcs::DataMsg;
using gcs::Delivery;
using gcs::MemberId;
using gcs::MsgId;
using gcs::OrderingBuffer;
using gcs::View;

View make_view(std::vector<MemberId> members, uint64_t epoch = 1) {
  View v;
  v.id = {epoch, members.empty() ? sim::kInvalidHost : members.front()};
  v.members = std::move(members);
  return v;
}

DataMsg msg(MemberId sender, uint64_t seq, uint64_t lamport,
            Delivery level = Delivery::kAgreed) {
  DataMsg m;
  m.id = {sender, seq};
  m.lamport = lamport;
  m.level = level;
  m.payload = {static_cast<uint8_t>(seq)};
  return m;
}

class OrderingTest : public ::testing::Test {
 protected:
  void SetUp() override { buf_.reset(make_view({0, 1, 2}), 0); }
  OrderingBuffer buf_;
};

TEST_F(OrderingTest, FifoDeliversOnContiguity) {
  EXPECT_TRUE(buf_.insert(msg(1, 1, 10, Delivery::kFifo)));
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id.seq, 1u);
}

TEST_F(OrderingTest, FifoHoldsAcrossGap) {
  buf_.insert(msg(1, 2, 20, Delivery::kFifo));  // seq 1 missing
  EXPECT_TRUE(buf_.drain().empty());
  buf_.insert(msg(1, 1, 10, Delivery::kFifo));
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id.seq, 1u);
  EXPECT_EQ(out[1].id.seq, 2u);
}

TEST_F(OrderingTest, DuplicatesIgnored) {
  EXPECT_TRUE(buf_.insert(msg(1, 1, 10)));
  EXPECT_FALSE(buf_.insert(msg(1, 1, 10)));
  // Also after delivery:
  buf_.observe(1, 11, 1, {});
  buf_.observe(2, 11, 0, {});
  buf_.drain();
  EXPECT_FALSE(buf_.insert(msg(1, 1, 10)));
}

TEST_F(OrderingTest, OutOfOrderDuplicateIgnored) {
  EXPECT_TRUE(buf_.insert(msg(1, 3, 30)));
  EXPECT_FALSE(buf_.insert(msg(1, 3, 30)));
}

TEST_F(OrderingTest, AgreedWaitsForAllMembersClocks) {
  buf_.insert(msg(1, 1, 10));
  // Heard only from the sender (via the message itself).
  buf_.observe(1, 10, 1, {});
  EXPECT_TRUE(buf_.drain().empty()) << "member 2 not heard yet";
  buf_.observe(2, 11, 0, {});
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 1u);
}

TEST_F(OrderingTest, AgreedRequiresStrictlyGreaterClock) {
  buf_.insert(msg(1, 1, 10));
  buf_.observe(1, 10, 1, {});
  buf_.observe(2, 10, 0, {});  // equal, not greater
  EXPECT_TRUE(buf_.drain().empty());
  buf_.observe(2, 11, 0, {});
  EXPECT_EQ(buf_.drain().size(), 1u);
}

TEST_F(OrderingTest, AgreedTotalOrderByLamportThenSender) {
  buf_.insert(msg(2, 1, 10));
  buf_.insert(msg(1, 1, 10));  // same lamport, lower sender id wins
  buf_.observe(1, 12, 1, {});
  buf_.observe(2, 12, 1, {});
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id.sender, 1u);
  EXPECT_EQ(out[1].id.sender, 2u);
}

TEST_F(OrderingTest, AgreedBlockedByKnownGapFromThirdMember) {
  buf_.insert(msg(1, 1, 10));
  buf_.observe(1, 11, 1, {});
  // Member 2's clock passed m but it claims 1 sent message we don't have.
  buf_.observe(2, 12, 1, {});
  EXPECT_TRUE(buf_.drain().empty()) << "message from 2 may order before m";
  // The missing message arrives and orders first.
  buf_.insert(msg(2, 1, 5));
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id.sender, 2u) << "lamport 5 before lamport 10";
  EXPECT_EQ(out[1].id.sender, 1u);
}

TEST_F(OrderingTest, SelfMessagesDeliverInSingletonView) {
  buf_.reset(make_view({0}), 0);
  buf_.insert(msg(0, 1, 1));
  buf_.observe(0, 1, 1, {});
  EXPECT_EQ(buf_.drain().size(), 1u);
}

TEST_F(OrderingTest, SafeWaitsForEveryonesCut) {
  buf_.insert(msg(1, 1, 10, Delivery::kSafe));
  buf_.observe(1, 11, 1, {});
  buf_.observe(2, 12, 0, {});
  EXPECT_TRUE(buf_.drain().empty()) << "member 2 has not confirmed receipt";
  buf_.observe(2, 13, 0, {{1, 1}});  // member 2's cut covers (1,1)
  buf_.observe(1, 13, 1, {{1, 1}});
  EXPECT_EQ(buf_.drain().size(), 1u);
}

TEST_F(OrderingTest, CausalWaitsForDependencies) {
  // Sender 2 saw one message from 1 before sending.
  DataMsg dependent = msg(2, 1, 20, Delivery::kCausal);
  dependent.vclock = {{1, 1}};
  buf_.insert(dependent);
  EXPECT_TRUE(buf_.drain().empty()) << "dependency from 1 undelivered";
  buf_.insert(msg(1, 1, 10, Delivery::kCausal));
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id.sender, 1u);
  EXPECT_EQ(out[1].id.sender, 2u);
}

TEST_F(OrderingTest, FifoBypassesBlockedAgreed) {
  buf_.insert(msg(1, 1, 10));  // AGREED, blocked (no clocks)
  buf_.insert(msg(2, 1, 5, Delivery::kFifo));
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].level, Delivery::kFifo);
}

TEST_F(OrderingTest, GapsReported) {
  buf_.observe(1, 10, 3, {});  // member 1 claims 3 sent
  buf_.insert(msg(1, 2, 8));   // have only seq 2 (out of order)
  auto gaps = buf_.gaps();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (MsgId{1, 1}));
  EXPECT_EQ(gaps[1], (MsgId{1, 3}));
}

TEST_F(OrderingTest, ReceivedVectorTracksContiguity) {
  buf_.insert(msg(1, 1, 10));
  buf_.insert(msg(1, 3, 30));
  EXPECT_EQ(buf_.received_upto(1), 1u);
  buf_.insert(msg(1, 2, 20));
  EXPECT_EQ(buf_.received_upto(1), 3u) << "out-of-order promoted";
}

TEST_F(OrderingTest, FlushDeliversEverythingContiguousInOrder) {
  buf_.insert(msg(1, 1, 30));
  buf_.insert(msg(2, 1, 10));
  buf_.insert(msg(2, 2, 20));
  auto out = buf_.flush_all();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lamport, 10u);
  EXPECT_EQ(out[1].lamport, 20u);
  EXPECT_EQ(out[2].lamport, 30u);
  EXPECT_EQ(buf_.pending_count(), 0u);
}

TEST_F(OrderingTest, FlushDropsUnfillableOutOfOrder) {
  buf_.insert(msg(1, 5, 50));  // permanent gap 1..4
  auto out = buf_.flush_all();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(buf_.pending_count(), 0u);
}

TEST_F(OrderingTest, HeldMessagesIncludesOutOfOrder) {
  buf_.insert(msg(1, 1, 10));
  buf_.insert(msg(2, 5, 50));
  EXPECT_EQ(buf_.held_messages().size(), 2u);
}

TEST_F(OrderingTest, StableUptoIsMinAcrossCuts) {
  buf_.insert(msg(1, 1, 10));
  buf_.insert(msg(1, 2, 20));
  buf_.observe(1, 21, 2, {{1, 2}});
  buf_.observe(2, 21, 0, {{1, 1}});
  EXPECT_EQ(buf_.stable_upto(1), 1u) << "member 2 only has seq 1";
}

TEST_F(OrderingTest, SetStreamPositionSkipsAhead) {
  buf_.set_stream_position(1, 5);
  EXPECT_EQ(buf_.received_upto(1), 5u);
  EXPECT_FALSE(buf_.insert(msg(1, 3, 30))) << "below the baseline";
  EXPECT_TRUE(buf_.insert(msg(1, 6, 60)));
}

TEST_F(OrderingTest, SetStreamPositionToZeroResetsJoiner) {
  buf_.insert(msg(1, 1, 10));
  buf_.observe(1, 11, 1, {});
  buf_.observe(2, 11, 0, {});
  buf_.drain();
  EXPECT_EQ(buf_.received_upto(1), 1u);
  buf_.set_stream_position(1, 0);
  EXPECT_TRUE(buf_.insert(msg(1, 1, 99))) << "fresh incarnation restarts at 1";
}

TEST_F(OrderingTest, ViewChangeDropsDepartedPeerFromConditions) {
  buf_.insert(msg(1, 1, 10));
  buf_.observe(1, 11, 1, {});
  // Member 2 never speaks; AGREED blocked.
  EXPECT_TRUE(buf_.drain().empty());
  // New view without member 2: progress resumes.
  buf_.reset(make_view({0, 1}, 2), 0);
  buf_.insert(msg(1, 2, 12));
  buf_.observe(1, 13, 2, {});
  auto out = buf_.drain();
  EXPECT_EQ(out.size(), 1u) << "old undelivered was flushed by caller; new "
                               "message delivers without member 2";
}

TEST_F(OrderingTest, DrainDeliversReadyRunInOnePass) {
  // A long contiguous deliverable run must cost one outer pass (plus the
  // final no-progress pass), with per-sender delivered counts still exact --
  // the regression would be the old one-message-per-pass drain, which
  // rescans all of pending_ once per delivered message.
  constexpr uint64_t kRun = 16;
  for (uint64_t s = 1; s <= kRun; ++s) buf_.insert(msg(1, s, 10 + s));
  for (uint64_t s = 1; s <= kRun / 2; ++s) buf_.insert(msg(2, s, 100 + s));
  buf_.observe(1, 1000, kRun, {});
  buf_.observe(2, 1000, kRun / 2, {});
  auto out = buf_.drain();
  ASSERT_EQ(out.size(), kRun + kRun / 2);
  EXPECT_LE(buf_.last_drain_passes(), 2);
  EXPECT_EQ(buf_.delivered_count(1), kRun);
  EXPECT_EQ(buf_.delivered_count(2), kRun / 2);
  // The run came out in lamport order.
  for (size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(out[i - 1].lamport, out[i].lamport);
}

TEST_F(OrderingTest, DeliveredVectorCountsPerSender) {
  buf_.insert(msg(1, 1, 10, Delivery::kFifo));
  buf_.insert(msg(1, 2, 11, Delivery::kFifo));
  buf_.drain();
  EXPECT_EQ(buf_.delivered_count(1), 2u);
  EXPECT_EQ(buf_.delivered_count(2), 0u);
}

}  // namespace
