#include <gtest/gtest.h>

#include "gcs/gcs_harness.h"

namespace {

using gcstest::GcsHarness;

TEST(StateTransfer, JoinerReceivesSnapshot) {
  GcsHarness h(2);
  h.members[0]->join();
  ASSERT_TRUE(h.run_until_converged(1));
  // Build up state at the founding member.
  for (int i = 0; i < 5; ++i) h.members[0]->multicast(h.payload_of(i));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[0].app_log.size() == 5; }));

  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));
  EXPECT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].app_log.size() == 5; }))
      << "joiner must inherit the 5-entry application state";
  EXPECT_EQ(h.logs[1].app_log, h.logs[0].app_log);
}

TEST(StateTransfer, MessagesDuringJoinApplyAfterState) {
  GcsHarness h(3);
  h.members[0]->join();
  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));
  for (int i = 0; i < 3; ++i) h.members[0]->multicast(h.payload_of(i));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].app_log.size() == 3; }));

  h.members[2]->join();
  ASSERT_TRUE(h.run_until_converged(3));
  // Traffic continues while (or right after) the joiner installs state.
  h.members[1]->multicast(h.payload_of(100));
  h.members[0]->multicast(h.payload_of(101));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[2].app_log.size() == 5; }));
  EXPECT_EQ(h.logs[2].app_log, h.logs[0].app_log)
      << "snapshot + post-join messages must equal the founders' state";
}

TEST(StateTransfer, StateSourceCrashFallsBackToAnotherMember) {
  GcsHarness h(3);
  h.members[0]->join();
  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));
  for (int i = 0; i < 4; ++i) h.members[0]->multicast(h.payload_of(i));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].app_log.size() == 4; }));

  h.members[2]->join();
  // Kill the lowest-id old member (the designated state source) the moment
  // the view forms, racing the state transfer.
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.members[2]->is_member(); }, sim::seconds(30)));
  h.net.crash_host(h.hosts[0]);
  EXPECT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[2].app_log.size() >= 4; }, sim::seconds(60)))
      << "joiner must fall back to member 1 for the snapshot";
}

TEST(StateTransfer, RestartedMemberGetsStateAgain) {
  GcsHarness h(2);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(2));
  for (int i = 0; i < 3; ++i) h.members[0]->multicast(h.payload_of(i));
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].app_log.size() == 3; }));

  // Member 1 crashes, loses everything, restarts and rejoins.
  h.net.crash_host(h.hosts[1]);
  h.logs[1] = gcstest::MemberLog{};  // the process state died with it
  ASSERT_TRUE(h.run_until_converged(1));
  h.net.restart_host(h.hosts[1]);
  h.members[1]->join();
  ASSERT_TRUE(h.run_until_converged(2));
  EXPECT_TRUE(testutil::run_until(
      h.sim, [&] { return h.logs[1].app_log.size() == 3; }))
      << "rejoining head recovers full state via transfer";
}

TEST(StateTransfer, NoTransferForFoundingGroup) {
  GcsHarness h(3);
  h.join_all();
  ASSERT_TRUE(h.run_until_converged(3));
  for (const auto& log : h.logs) EXPECT_TRUE(log.app_log.empty());
  EXPECT_EQ(h.members[0]->stats().delivered, 0u);
}

}  // namespace
