#include "util/config.h"

#include <gtest/gtest.h>

namespace {

using jutil::Config;
using jutil::ConfigError;

TEST(ConfigParse, Scalars) {
  Config cfg = Config::parse(R"(
    # JOSHUA style configuration
    port = 17000
    name = "head node A"
    rate = 0.25
    debug = true
  )");
  EXPECT_EQ(cfg.get_int("port"), 17000);
  EXPECT_EQ(cfg.get_string("name"), "head node A");
  EXPECT_DOUBLE_EQ(cfg.get_double("rate"), 0.25);
  EXPECT_TRUE(cfg.get_bool("debug"));
}

TEST(ConfigParse, Defaults) {
  Config cfg = Config::parse("a = 1");
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_string("missing", "x"), "x");
  EXPECT_DOUBLE_EQ(cfg.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(cfg.get_bool("missing", true));
}

TEST(ConfigParse, Lists) {
  Config cfg = Config::parse(R"(heads = {head0, head1, "head 2"})");
  EXPECT_EQ(cfg.get_list("heads"),
            (std::vector<std::string>{"head0", "head1", "head 2"}));
}

TEST(ConfigParse, EmptyListAndScalarAsList) {
  Config cfg = Config::parse("empty = {}\nsingle = abc");
  EXPECT_TRUE(cfg.get_list("empty").empty());
  EXPECT_EQ(cfg.get_list("single"), (std::vector<std::string>{"abc"}));
  EXPECT_TRUE(cfg.get_list("missing").empty());
}

TEST(ConfigParse, NamedSections) {
  Config cfg = Config::parse(R"(
    node head0 {
      port = 1
    }
    node head1 {
      port = 2
    }
  )");
  ASSERT_NE(cfg.section("node", "head0"), nullptr);
  EXPECT_EQ(cfg.section("node", "head0")->get_int("port"), 1);
  EXPECT_EQ(cfg.section("node", "head1")->get_int("port"), 2);
  EXPECT_EQ(cfg.section("node", "nope"), nullptr);
  EXPECT_EQ(cfg.section_titles("node"),
            (std::vector<std::string>{"head0", "head1"}));
}

TEST(ConfigParse, AnonymousAndNestedSections) {
  Config cfg = Config::parse(R"(
    gcs {
      timeouts {
        suspect = 500
      }
    }
  )");
  const Config* gcs = cfg.section("gcs", "");
  ASSERT_NE(gcs, nullptr);
  const Config* timeouts = gcs->section("timeouts", "");
  ASSERT_NE(timeouts, nullptr);
  EXPECT_EQ(timeouts->get_int("suspect"), 500);
}

TEST(ConfigParse, QuotedEscapes) {
  Config cfg = Config::parse(R"(s = "a\"b\\c\n\t")");
  EXPECT_EQ(cfg.get_string("s"), "a\"b\\c\n\t");
}

TEST(ConfigParse, CommentsEverywhere) {
  Config cfg = Config::parse("a = 1 # trailing\n# full line\nb = 2");
  EXPECT_EQ(cfg.get_int("a"), 1);
  EXPECT_EQ(cfg.get_int("b"), 2);
}

TEST(ConfigParse, SyntaxErrorsCarryLineNumbers) {
  try {
    Config::parse("a = 1\nb = ");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigParse, RejectsUnterminatedConstructs) {
  EXPECT_THROW(Config::parse("s = \"abc"), ConfigError);
  EXPECT_THROW(Config::parse("l = {a, b"), ConfigError);
  EXPECT_THROW(Config::parse("sec {"), ConfigError);
  EXPECT_THROW(Config::parse("}"), ConfigError);
}

TEST(ConfigTypes, ConversionFailuresThrow) {
  Config cfg = Config::parse("s = hello");
  EXPECT_THROW(cfg.get_int("s"), ConfigError);
  EXPECT_THROW(cfg.get_bool("s"), ConfigError);
  EXPECT_THROW(cfg.get_double("s"), ConfigError);
  EXPECT_THROW(cfg.get_string("missing"), ConfigError);
}

TEST(ConfigRoundTrip, SerializeAndReparse) {
  Config cfg;
  cfg.set("port", "17000");
  cfg.set("name", "head node");
  cfg.set_list("heads", {"a", "b c"});
  Config& sub = cfg.add_section("node", "head0");
  sub.set("port", "1");

  Config back = Config::parse(cfg.to_string());
  EXPECT_EQ(back.get_int("port"), 17000);
  EXPECT_EQ(back.get_string("name"), "head node");
  EXPECT_EQ(back.get_list("heads"), (std::vector<std::string>{"a", "b c"}));
  ASSERT_NE(back.section("node", "head0"), nullptr);
  EXPECT_EQ(back.section("node", "head0")->get_int("port"), 1);
}

TEST(ConfigRoundTrip, KeysPreserveDeclarationOrder) {
  Config cfg = Config::parse("z = 1\na = 2\nm = 3");
  EXPECT_EQ(cfg.keys(), (std::vector<std::string>{"z", "a", "m"}));
}

}  // namespace
