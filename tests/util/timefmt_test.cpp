#include "util/timefmt.h"

#include <gtest/gtest.h>

namespace {

using jutil::count_nines;
using jutil::format_availability;
using jutil::format_duration_coarse;

// The paper's Figure 12 downtime column, verbatim.
TEST(FormatDuration, PaperFigure12Rows) {
  // 1 head: 5d 4h 21min
  double one_head = 8760.0 * 3600.0 * (1.0 - 5000.0 / 5072.0);
  EXPECT_EQ(format_duration_coarse(one_head), "5d 4h 21min");
  // 2 heads: 1h 45min
  double a2 = 1.0 - (72.0 / 5072.0) * (72.0 / 5072.0);
  EXPECT_EQ(format_duration_coarse(8760.0 * 3600.0 * (1.0 - a2)), "1h 45min");
  // 3 heads: 1min 30s
  double u = 72.0 / 5072.0;
  double a3 = 1.0 - u * u * u;
  EXPECT_EQ(format_duration_coarse(8760.0 * 3600.0 * (1.0 - a3)), "1min 30s");
  // 4 heads: 1s
  double a4 = 1.0 - u * u * u * u;
  EXPECT_EQ(format_duration_coarse(8760.0 * 3600.0 * (1.0 - a4)), "1s");
}

TEST(FormatDuration, SubSecondAsMillis) {
  EXPECT_EQ(format_duration_coarse(0.25), "250ms");
  EXPECT_EQ(format_duration_coarse(0.0), "0ms");
}

TEST(FormatDuration, NegativeClampsToZero) {
  EXPECT_EQ(format_duration_coarse(-5.0), "0ms");
}

TEST(FormatDuration, PlainUnits) {
  EXPECT_EQ(format_duration_coarse(90.0), "1min 30s");
  EXPECT_EQ(format_duration_coarse(3600.0), "1h");
  EXPECT_EQ(format_duration_coarse(86400.0), "1d");
  EXPECT_EQ(format_duration_coarse(1.0), "1s");
}

// The paper counts 98.6% -> 1 nine, 99.98% -> 3, 99.9997% -> 5,
// 99.999996% -> 7.
TEST(CountNines, PaperFigure12Column) {
  EXPECT_EQ(count_nines(0.986), 1);
  EXPECT_EQ(count_nines(0.9998), 3);
  EXPECT_EQ(count_nines(0.999997), 5);
  EXPECT_EQ(count_nines(0.99999996), 7);
}

TEST(CountNines, Extremes) {
  EXPECT_EQ(count_nines(0.0), 0);
  EXPECT_EQ(count_nines(0.5), 0);
  EXPECT_EQ(count_nines(1.0), 15);
}

TEST(FormatAvailability, ShowsNinesStructure) {
  EXPECT_EQ(format_availability(0.9998), "99.98%");
  EXPECT_EQ(format_availability(0.986), "98.6%");
}

}  // namespace
