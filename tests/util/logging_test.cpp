#include "util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace {

using jutil::Logger;
using jutil::LogLevel;

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::instance().set_sink(
        [this](LogLevel level, std::string_view line) {
          captured_.emplace_back(level, std::string(line));
        });
    Logger::instance().set_level(LogLevel::kDebug);
  }
  void TearDown() override {
    Logger::instance().set_sink(nullptr);
    Logger::instance().set_clock(nullptr);
    Logger::instance().set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> captured_;
};

TEST_F(LoggingTest, EmitsFormattedLine) {
  JLOG(kInfo, "test") << "hello " << 42;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].first, LogLevel::kInfo);
  EXPECT_NE(captured_[0].second.find("[test]"), std::string::npos);
  EXPECT_NE(captured_[0].second.find("hello 42"), std::string::npos);
}

TEST_F(LoggingTest, LevelFiltering) {
  Logger::instance().set_level(LogLevel::kError);
  JLOG(kInfo, "test") << "dropped";
  JLOG(kError, "test") << "kept";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("kept"), std::string::npos);
}

TEST_F(LoggingTest, OffDisablesEverything) {
  Logger::instance().set_level(LogLevel::kOff);
  JLOG(kError, "test") << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, InjectedClockStampsSimTime) {
  Logger::instance().set_clock([] { return int64_t{2500000}; });  // 2.5 s
  JLOG(kInfo, "test") << "stamped";
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_NE(captured_[0].second.find("2.500000"), std::string::npos)
      << captured_[0].second;
}

TEST_F(LoggingTest, StreamNotEvaluatedWhenDisabled) {
  Logger::instance().set_level(LogLevel::kError);
  int evaluations = 0;
  auto evaluate = [&] {
    ++evaluations;
    return 1;
  };
  JLOG(kDebug, "test") << evaluate();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
