#include "util/strings.h"

#include <gtest/gtest.h>

namespace {

using jutil::join;
using jutil::parse_bool;
using jutil::parse_num;
using jutil::split;
using jutil::split_ws;
using jutil::starts_with;
using jutil::to_lower;
using jutil::trim;

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, KeepsEmptyFields) {
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Split, SingleFieldWithoutSeparator) {
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Split, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWs, DropsAllWhitespaceRuns) {
  EXPECT_EQ(split_ws("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitWs, EmptyAndBlankInputs) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n ").empty());
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(starts_with("foo", ""));
}

TEST(ToLower, AsciiOnly) { EXPECT_EQ(to_lower("AbC-9"), "abc-9"); }

TEST(ParseNum, ValidIntegers) {
  EXPECT_EQ(parse_num<int>("42"), 42);
  EXPECT_EQ(parse_num<int64_t>("-7"), -7);
  EXPECT_EQ(parse_num<uint64_t>("18446744073709551615"),
            18446744073709551615ull);
}

TEST(ParseNum, RejectsGarbage) {
  EXPECT_FALSE(parse_num<int>("42x").has_value());
  EXPECT_FALSE(parse_num<int>("").has_value());
  EXPECT_FALSE(parse_num<int>("4 2").has_value());
}

TEST(ParseNum, RejectsOverflow) {
  EXPECT_FALSE(parse_num<int8_t>("300").has_value());
}

TEST(ParseBool, AllSpellings) {
  for (const char* s : {"true", "YES", "on", "1"})
    EXPECT_EQ(parse_bool(s), true) << s;
  for (const char* s : {"false", "No", "OFF", "0"})
    EXPECT_EQ(parse_bool(s), false) << s;
  EXPECT_FALSE(parse_bool("maybe").has_value());
  EXPECT_EQ(parse_bool(" true "), true) << "trims whitespace";
}

}  // namespace
