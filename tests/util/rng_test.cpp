#include "util/rng.h"

#include <gtest/gtest.h>

namespace {

using jutil::Rng;

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(1000), b.next_u64(1000));
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64(1000000) == b.next_u64(1000000)) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ExponentialMeanApproximately) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(Rng, NormalNonnegNeverNegative) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.normal_nonneg(1.0, 5.0), 0.0);
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next_u64(1000), fb.next_u64(1000));
}

}  // namespace
