#include "util/stats.h"

#include <gtest/gtest.h>

namespace {

using jutil::Histogram;
using jutil::Samples;

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(Samples, EmptyAfterClearIsSafe) {
  Samples s;
  s.add(42.0);
  s.clear();
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 0.0);
}

TEST(Samples, SingleSampleIsEveryStatistic) {
  Samples s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);  // n-1 undefined; defined as 0
  EXPECT_DOUBLE_EQ(s.percentile(0), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(100), 7.5);
}

TEST(Samples, MeanMinMax) {
  Samples s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(Samples, StddevMatchesHandComputation) {
  Samples s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  // Sample stddev (n-1) of this classic set is ~2.138.
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Samples, PercentileInterpolates) {
  Samples s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 17.5);
}

TEST(Samples, PercentileRangeChecked) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), std::out_of_range);
  EXPECT_THROW(s.percentile(101), std::out_of_range);
}

TEST(Samples, AddAfterQueryKeepsWorking) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  s.add(1.0);  // sorted-state invalidation
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, ClearResets) {
  Samples s;
  s.add(5.0);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 3);  // [0,10) [10,20) [20,30)
  h.add(5.0);
  h.add(15.0);
  h.add(25.0);
  h.add(-100.0);  // clamps low
  h.add(1000.0);  // clamps high
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 10.0);
}

TEST(Histogram, RejectsBadShape) {
  EXPECT_THROW(Histogram(0, 0.0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderIsNonEmptyAndProportional) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.add(0.5);
  h.add(1.5);
  std::string render = h.render(10);
  EXPECT_NE(render.find("##########"), std::string::npos);  // peak bucket
  EXPECT_NE(render.find("#####"), std::string::npos);       // half bucket
}

}  // namespace
