// Shared helpers for the test suite.
#pragma once

#include <functional>

#include "sim/simulation.h"

namespace testutil {

/// Run the simulation in small slices until `pred` holds or `deadline`
/// simulated time passes. Returns whether the predicate held.
inline bool run_until(sim::Simulation& sim, const std::function<bool()>& pred,
                      sim::Duration deadline = sim::seconds(60),
                      sim::Duration slice = sim::msec(10)) {
  sim::Time limit = sim.now() + deadline;
  while (sim.now() < limit) {
    if (pred()) return true;
    sim.run_for(slice);
  }
  return pred();
}

}  // namespace testutil
