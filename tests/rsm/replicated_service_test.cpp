// The generic replication adapter, exercised with the PVFS metadata
// service: the paper's "applicable to any deterministic HPC system
// service" claim, tested.
#include "rsm/replicated_service.h"

#include <gtest/gtest.h>

#include "pvfs/metadata.h"
#include "sim/calibration.h"
#include "testutil.h"

namespace {

struct RsmHarness {
  explicit RsmHarness(int n, uint64_t seed = 1, bool read_local = false)
      : sim(seed), net(sim, sim::fast_calibration().network) {
    for (int i = 0; i < n; ++i)
      hosts.push_back(net.add_host("md" + std::to_string(i)).id());
    login = net.add_host("login").id();
    for (int i = 0; i < n; ++i) {
      services.push_back(std::make_unique<pvfs::MetadataServer>());
      rsm::ReplicaConfig cfg;
      cfg.client_port = 19000;
      cfg.group = gcs::group_config_from(sim::fast_calibration());
      cfg.group.port = 7100;
      cfg.group.peers = hosts;
      cfg.group.heartbeat_interval = sim::msec(50);
      cfg.group.suspect_timeout = sim::msec(250);
      cfg.group.flush_timeout = sim::msec(500);
      cfg.group.join_retry = sim::msec(100);
      cfg.read_local = read_local;
      replicas.push_back(std::make_unique<rsm::ReplicaNode>(
          net, hosts[static_cast<size_t>(i)], cfg,
          services.back().get()));
    }
    rsm::ReplicaClient::Config ccfg;
    for (sim::HostId h : hosts) ccfg.replicas.push_back({h, 19000});
    client = std::make_unique<rsm::ReplicaClient>(net, login, 20000, ccfg);
  }

  void start_all() {
    for (auto& r : replicas) r->start();
  }

  bool converged(size_t n) {
    for (auto& r : replicas) {
      if (!net.host(r->group().id()).up()) continue;
      if (r->group().state() == gcs::GroupMember::State::kDown) continue;
      if (!r->in_service() || r->group().view().size() != n) return false;
    }
    return true;
  }

  bool run_until_converged(size_t n) {
    return testutil::run_until(sim, [&] { return converged(n); },
                               sim::seconds(30));
  }

  pvfs::MdResponse call(pvfs::MdRequest req,
                        sim::Duration deadline = sim::seconds(30)) {
    std::optional<pvfs::MdResponse> out;
    bool done = false;
    client->request(pvfs::encode(req), [&](std::optional<sim::Payload> r) {
      done = true;
      if (r) out = pvfs::decode_response(*r);
    });
    testutil::run_until(sim, [&] { return done; }, deadline);
    return out.value_or(pvfs::MdResponse{pvfs::MdStatus::kInvalid,
                                         pvfs::kInvalidHandle, {}, {}});
  }

  sim::Simulation sim;
  sim::Network net;
  std::vector<sim::HostId> hosts;
  sim::HostId login;
  std::vector<std::unique_ptr<pvfs::MetadataServer>> services;
  std::vector<std::unique_ptr<rsm::ReplicaNode>> replicas;
  std::unique_ptr<rsm::ReplicaClient> client;
};

pvfs::MdRequest mkdir_req(const std::string& name,
                          pvfs::Handle dir = pvfs::kRootHandle) {
  pvfs::MdRequest req;
  req.op = pvfs::MdOp::kMkdir;
  req.dir = dir;
  req.name = name;
  req.mode = 0755;
  return req;
}

TEST(ReplicatedMetadata, WritesReplicateToAllReplicas) {
  RsmHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(3));
  pvfs::MdResponse resp = h.call(mkdir_req("scratch"));
  ASSERT_EQ(resp.status, pvfs::MdStatus::kOk);
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    for (auto& s : h.services)
      if (s->resolve("/scratch") == pvfs::kInvalidHandle) return false;
    return true;
  }));
  // Identical handles at every replica (determinism).
  pvfs::Handle ref = h.services[0]->resolve("/scratch");
  for (auto& s : h.services) EXPECT_EQ(s->resolve("/scratch"), ref);
}

TEST(ReplicatedMetadata, SurvivesReplicaFailure) {
  RsmHarness h(3);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(3));
  ASSERT_EQ(h.call(mkdir_req("before")).status, pvfs::MdStatus::kOk);

  h.net.crash_host(h.hosts[0]);
  ASSERT_TRUE(h.run_until_converged(2));
  pvfs::MdResponse after = h.call(mkdir_req("after"));
  EXPECT_EQ(after.status, pvfs::MdStatus::kOk);
  EXPECT_NE(h.services[1]->resolve("/before"), pvfs::kInvalidHandle)
      << "no loss of namespace state";
  EXPECT_NE(h.services[1]->resolve("/after"), pvfs::kInvalidHandle);
  EXPECT_GE(h.client->failovers(), 1u);
}

TEST(ReplicatedMetadata, JoinerInheritsNamespace) {
  RsmHarness h(2);
  h.replicas[0]->start();
  ASSERT_TRUE(testutil::run_until(
      h.sim, [&] { return h.replicas[0]->in_service(); }, sim::seconds(30)));
  ASSERT_EQ(h.call(mkdir_req("home")).status, pvfs::MdStatus::kOk);
  pvfs::MdRequest file;
  file.op = pvfs::MdOp::kCreate;
  file.dir = h.services[0]->resolve("/home");
  file.name = "data";
  ASSERT_EQ(h.call(file).status, pvfs::MdStatus::kOk);

  h.replicas[1]->start();
  ASSERT_TRUE(h.run_until_converged(2));
  EXPECT_TRUE(testutil::run_until(h.sim, [&] {
    return h.services[1]->resolve("/home/data") != pvfs::kInvalidHandle;
  }))
      << "snapshot transfer rebuilt the namespace at the joiner";
  EXPECT_EQ(h.services[1]->snapshot(), h.services[0]->snapshot())
      << "byte-identical state";
}

TEST(ReplicatedMetadata, OrderedReadsSeePrecedingWrites) {
  RsmHarness h(2);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(2));
  ASSERT_EQ(h.call(mkdir_req("d")).status, pvfs::MdStatus::kOk);
  pvfs::MdRequest look;
  look.op = pvfs::MdOp::kLookup;
  look.dir = pvfs::kRootHandle;
  look.name = "d";
  pvfs::MdResponse resp = h.call(look);
  EXPECT_EQ(resp.status, pvfs::MdStatus::kOk)
      << "an ordered read after an ordered write always sees it";
}

TEST(ReplicatedMetadata, ReadLocalModeServesWithoutOrdering) {
  RsmHarness h(3, 1, /*read_local=*/true);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(3));
  ASSERT_EQ(h.call(mkdir_req("d")).status, pvfs::MdStatus::kOk);
  uint64_t applied_before = 0;
  for (auto& r : h.replicas) applied_before += r->stats().applied;
  pvfs::MdRequest look;
  look.op = pvfs::MdOp::kLookup;
  look.dir = pvfs::kRootHandle;
  look.name = "d";
  ASSERT_EQ(h.call(look).status, pvfs::MdStatus::kOk);
  uint64_t applied_after = 0, local_reads = 0;
  for (auto& r : h.replicas) {
    applied_after += r->stats().applied;
    local_reads += r->stats().local_reads;
  }
  EXPECT_EQ(applied_after, applied_before)
      << "the read bypassed the total order";
  EXPECT_EQ(local_reads, 1u);
}

TEST(ReplicatedMetadata, ConcurrentClientsStayConsistent) {
  RsmHarness h(3, 9);
  h.start_all();
  ASSERT_TRUE(h.run_until_converged(3));
  // Two clients race creates of the same name; exactly one wins, and all
  // replicas agree which.
  rsm::ReplicaClient::Config ccfg;
  for (sim::HostId host : h.hosts) ccfg.replicas.push_back({host, 19000});
  rsm::ReplicaClient client2(h.net, h.login, 20001, ccfg);

  std::optional<pvfs::MdStatus> s1, s2;
  h.client->request(pvfs::encode(mkdir_req("race")),
                    [&](std::optional<sim::Payload> r) {
                      if (r) s1 = pvfs::decode_response(*r).status;
                    });
  client2.request(pvfs::encode(mkdir_req("race")),
                  [&](std::optional<sim::Payload> r) {
                    if (r) s2 = pvfs::decode_response(*r).status;
                  });
  testutil::run_until(h.sim,
                      [&] { return s1.has_value() && s2.has_value(); });
  ASSERT_TRUE(s1 && s2);
  EXPECT_TRUE((*s1 == pvfs::MdStatus::kOk) ^ (*s2 == pvfs::MdStatus::kOk))
      << "exactly one create wins the total order";
  // The replying replica can apply a hop before its peers hear the ordering
  // decision; wait for every replica to catch up, then demand agreement.
  testutil::run_until(h.sim, [&] {
    for (auto& s : h.services)
      if (s->snapshot() != h.services[0]->snapshot()) return false;
    return true;
  });
  for (auto& s : h.services)
    EXPECT_EQ(s->snapshot(), h.services[0]->snapshot());
}

}  // namespace
